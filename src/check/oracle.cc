#include "src/check/oracle.h"

#include "src/arch/subset_stack.h"
#include "src/arch/unified_stack.h"
#include "src/util/assert.h"

namespace flashsim {

OracleHit CollapseHitLevel(HitLevel level) {
  switch (level) {
    case HitLevel::kRam:
      return OracleHit::kRam;
    case HitLevel::kFlash:
      return OracleHit::kFlash;
    case HitLevel::kFilerFast:
    case HitLevel::kFilerSlow:
      return OracleHit::kFiler;
  }
  FLASHSIM_CHECK(false);
  return OracleHit::kFiler;
}

const char* OracleHitName(OracleHit hit) {
  switch (hit) {
    case OracleHit::kRam:
      return "ram";
    case OracleHit::kFlash:
      return "flash";
    case OracleHit::kFiler:
      return "filer";
  }
  return "?";
}

// ----------------------------------------------------------------------------
// OracleLru

OracleLru::OracleLru(uint64_t ram_slots, uint64_t flash_slots, ReplacementPolicy replacement)
    : ram_slots_(ram_slots),
      flash_slots_(flash_slots),
      replacement_(replacement),
      protected_cap_((ram_slots + flash_slots) / 2) {}

uint64_t OracleLru::dirty_count() const { return dirty_[0].size() + dirty_[1].size(); }

Medium OracleLru::MediumOf(BlockKey key) const {
  const auto it = entries_.find(key);
  FLASHSIM_CHECK(it != entries_.end());
  return it->second.slot < ram_slots_ ? Medium::kRam : Medium::kFlash;
}

bool OracleLru::IsDirty(BlockKey key) const {
  const auto it = entries_.find(key);
  FLASHSIM_CHECK(it != entries_.end());
  return it->second.dirty;
}

void OracleLru::Touch(BlockKey key) {
  const auto it = entries_.find(key);
  FLASHSIM_CHECK(it != entries_.end());
  Entry& entry = it->second;
  switch (replacement_) {
    case ReplacementPolicy::kLru:
      lru_.erase(entry.lru_it);
      lru_.push_front(key);
      entry.lru_it = lru_.begin();
      return;
    case ReplacementPolicy::kFifo:
      // Insertion order is the only order: hits change nothing.
      return;
    case ReplacementPolicy::kClock:
      // The chain stays put; the reference bit buys one second chance.
      entry.referenced = true;
      return;
    case ReplacementPolicy::kSlru:
      if (!entry.probationary) {
        // Protected hit: plain move-to-front within the protected segment.
        lru_.erase(entry.lru_it);
        lru_.push_front(key);
        entry.lru_it = lru_.begin();
        return;
      }
      // Probationary hit: promote to the protected MRU; if that overfills
      // the protected segment, its LRU member falls back to the
      // probationary MRU (same global chain position either way).
      prob_.erase(entry.lru_it);
      lru_.push_front(key);
      entry.lru_it = lru_.begin();
      entry.probationary = false;
      if (lru_.size() > protected_cap_) {
        const BlockKey demoted = lru_.back();
        lru_.pop_back();
        prob_.push_front(demoted);
        Entry& d = entries_.at(demoted);
        d.lru_it = prob_.begin();
        d.probationary = true;
      }
      return;
    case ReplacementPolicy::kLruK:
      entry.prev_tick = entry.last_tick;
      entry.last_tick = ++tick_;
      lru_.erase(entry.lru_it);
      lru_.push_front(key);
      entry.lru_it = lru_.begin();
      return;
  }
  FLASHSIM_CHECK(false);
}

BlockKey OracleLru::SelectVictim() {
  switch (replacement_) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo:
      return lru_.back();
    case ReplacementPolicy::kClock:
      // Rotate the tail forward, clearing bits, until an unreferenced block
      // surfaces; bounded because every spin clears one bit.
      for (uint64_t spins = 0; spins <= 2 * size(); ++spins) {
        const BlockKey candidate = lru_.back();
        Entry& entry = entries_.at(candidate);
        if (!entry.referenced) {
          return candidate;
        }
        entry.referenced = false;
        lru_.pop_back();
        lru_.push_front(candidate);
        entry.lru_it = lru_.begin();
      }
      FLASHSIM_CHECK(false);
      return 0;
    case ReplacementPolicy::kSlru:
      // Victim is the global chain tail: the probationary LRU when the
      // segment is populated, else the protected LRU.
      return prob_.empty() ? lru_.back() : prob_.back();
    case ReplacementPolicy::kLruK: {
      // LRU-2: evict the smallest (penultimate tick, last tick, slot); a
      // block seen only once (prev == 0) loses to any block seen twice.
      bool found = false;
      BlockKey best_key = 0;
      uint64_t best_prev = 0;
      uint64_t best_last = 0;
      uint32_t best_slot = 0;
      for (const auto& [key, entry] : entries_) {
        if (!found || entry.prev_tick < best_prev ||
            (entry.prev_tick == best_prev &&
             (entry.last_tick < best_last ||
              (entry.last_tick == best_last && entry.slot < best_slot)))) {
          found = true;
          best_key = key;
          best_prev = entry.prev_tick;
          best_last = entry.last_tick;
          best_slot = entry.slot;
        }
      }
      FLASHSIM_CHECK(found);
      return best_key;
    }
  }
  FLASHSIM_CHECK(false);
  return 0;
}

uint32_t OracleLru::AllocateSlot() {
  // Mirrors LruBlockCache: slots freed by Remove are reused LIFO, then
  // never-used slots are handed out in index order.
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  return next_unused_++;
}

bool OracleLru::Insert(BlockKey key, std::optional<OracleBlock>* evicted) {
  evicted->reset();
  FLASHSIM_CHECK(entries_.count(key) == 0);
  if (capacity() == 0) {
    return false;
  }
  uint32_t slot;
  if (size() < capacity()) {
    slot = AllocateSlot();
  } else {
    // Full: evict the policy's victim and reuse its buffer (§3.3: under
    // exact LRU new blocks land in the least recently used buffer, whatever
    // its medium; other policies choose their own victim).
    const BlockKey victim = SelectVictim();
    OracleBlock removed;
    FLASHSIM_CHECK(Remove(victim, &removed));
    *evicted = removed;
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Entry entry;
  entry.slot = slot;
  entry.dirty = false;
  if (replacement_ == ReplacementPolicy::kSlru) {
    // New blocks start on probation; only a hit promotes them.
    prob_.push_front(key);
    entry.lru_it = prob_.begin();
    entry.probationary = true;
  } else {
    lru_.push_front(key);
    entry.lru_it = lru_.begin();
  }
  if (replacement_ == ReplacementPolicy::kLruK) {
    entry.last_tick = ++tick_;
    entry.prev_tick = 0;
  }
  entries_[key] = entry;
  return true;
}

bool OracleLru::Remove(BlockKey key, OracleBlock* removed) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return false;
  }
  if (removed != nullptr) {
    removed->key = key;
    removed->medium = it->second.slot < ram_slots_ ? Medium::kRam : Medium::kFlash;
    removed->dirty = it->second.dirty;
  }
  if (it->second.dirty) {
    const size_t m = it->second.slot < ram_slots_ ? 0 : 1;
    dirty_[m].erase(it->second.dirty_it);
  }
  ChainOf(it->second).erase(it->second.lru_it);
  free_slots_.push_back(it->second.slot);
  entries_.erase(it);
  return true;
}

void OracleLru::MarkDirty(BlockKey key) {
  const auto it = entries_.find(key);
  FLASHSIM_CHECK(it != entries_.end());
  if (it->second.dirty) {
    return;  // re-dirtying keeps the original dirty-list position
  }
  const size_t m = it->second.slot < ram_slots_ ? 0 : 1;
  dirty_[m].push_back(key);
  it->second.dirty_it = std::prev(dirty_[m].end());
  it->second.dirty = true;
}

void OracleLru::MarkClean(BlockKey key) {
  const auto it = entries_.find(key);
  FLASHSIM_CHECK(it != entries_.end());
  if (!it->second.dirty) {
    return;
  }
  const size_t m = it->second.slot < ram_slots_ ? 0 : 1;
  dirty_[m].erase(it->second.dirty_it);
  it->second.dirty = false;
}

std::optional<BlockKey> OracleLru::OldestDirty(Medium medium) const {
  const auto& list = dirty_[static_cast<size_t>(medium)];
  if (list.empty()) {
    return std::nullopt;
  }
  return list.front();
}

std::vector<OracleBlock> OracleLru::SnapshotLru() const {
  std::vector<OracleBlock> out;
  out.reserve(entries_.size());
  const auto append = [&](const std::list<BlockKey>& chain) {
    for (const BlockKey key : chain) {
      const Entry& entry = entries_.at(key);
      out.push_back(
          {key, entry.slot < ram_slots_ ? Medium::kRam : Medium::kFlash, entry.dirty});
    }
  };
  // The logical chain is [protected][probationary] for kSlru (matching the
  // real single chain split at the boundary pointer) and just lru_ for
  // every other policy (prob_ is empty).
  append(lru_);
  append(prob_);
  return out;
}

// ----------------------------------------------------------------------------
// OracleAdmissionFilter

bool OracleAdmissionFilter::ShouldAdmit(BlockKey key) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Second sight within the ghost window: admit and forget.
    ghost_.erase(it->second);
    index_.erase(it);
    return true;
  }
  // First sight: remember (evicting the coldest ghost when full), reject.
  if (ghost_.size() >= capacity_) {
    index_.erase(ghost_.back());
    ghost_.pop_back();
  }
  ghost_.push_front(key);
  index_[key] = ghost_.begin();
  return false;
}

std::vector<BlockKey> OracleLru::SnapshotDirty(Medium medium) const {
  const auto& list = dirty_[static_cast<size_t>(medium)];
  return std::vector<BlockKey>(list.begin(), list.end());
}

// ----------------------------------------------------------------------------
// Subset oracles (naive, lookaside) — mirror src/arch/subset_stack.cc.

namespace {

class OracleSubsetBase : public OracleStack {
 public:
  explicit OracleSubsetBase(const StackConfig& config)
      : config_(config),
        ram_(config.ram_blocks, 0, config.replacement),
        flash_(0, config.flash_blocks, config.replacement) {
    if (config.admission == AdmissionPolicy::kFlashield && config.flash_blocks > 0) {
      admission_.emplace(config.flash_blocks);
    }
  }

  OracleHit Read(BlockKey key) override {
    if (HasRam() && ram_.Contains(key)) {
      ram_.Touch(key);
      ++counters_.ram_hits;
      return OracleHit::kRam;
    }
    if (HasFlash() && flash_.Contains(key)) {
      flash_.Touch(key);
      ++counters_.flash_hits;
      if (HasRam()) {
        InstallInRam(key);
      }
      return OracleHit::kFlash;
    }
    ++counters_.filer_reads;
    if (HasFlash() && MayInstallInFlash(key)) {
      EnsureFlashSlot(key);
      ++counters_.flash_installs;
    }
    if (HasRam()) {
      InstallInRam(key);
    }
    return OracleHit::kFiler;
  }

  void Write(BlockKey key) override {
    if (!HasRam()) {
      if (!HasFlash()) {
        ++counters_.filer_writebacks;
        ++counters_.sync_filer_writes;
        return;
      }
      WriteWithoutRam(key);
      return;
    }
    if (!ram_.Contains(key)) {
      if (HasFlash() && MayInstallInFlash(key)) {
        EnsureFlashSlot(key);
      }
      InstallInRam(key);
    } else {
      ram_.Touch(key);
    }
    switch (config_.ram_policy) {
      case WritebackPolicy::kSync:
        WritebackFromRam(key, /*requester_waits=*/true);
        break;
      case WritebackPolicy::kAsync:
        WritebackFromRam(key, /*requester_waits=*/false);
        break;
      default:
        ram_.MarkDirty(key);
        break;
    }
  }

  bool FlushOneRamBlock() override {
    const std::optional<BlockKey> key = ram_.OldestDirty(Medium::kRam);
    if (!key.has_value()) {
      return false;
    }
    ram_.MarkClean(*key);
    WritebackFromRam(*key, /*requester_waits=*/true);
    return true;
  }

  void Invalidate(BlockKey key) override {
    if (HasRam()) {
      ram_.Remove(key);
    }
    if (HasFlash()) {
      flash_.Remove(key);
    }
  }

  bool Holds(BlockKey key) const override {
    if (HasFlash()) {
      // Only an admission filter can leave a block RAM-only.
      return flash_.Contains(key) ||
             (admission_.has_value() && ram_.Contains(key));
    }
    return ram_.Contains(key);
  }

  bool HoldsDirty(BlockKey key) const override {
    return (ram_.Contains(key) && ram_.IsDirty(key)) ||
           (HasFlash() && flash_.Contains(key) && flash_.IsDirty(key));
  }

  uint64_t RamResident() const override { return ram_.size(); }
  uint64_t FlashResident() const override { return flash_.size(); }
  uint64_t DirtyBlocks() const override { return ram_.dirty_count() + flash_.dirty_count(); }

  Snapshot TakeSnapshot() const override {
    Snapshot snap;
    snap.caches = {ram_.SnapshotLru(), flash_.SnapshotLru()};
    snap.dirty_orders = {ram_.SnapshotDirty(Medium::kRam), flash_.SnapshotDirty(Medium::kFlash)};
    return snap;
  }

 protected:
  bool HasRam() const { return ram_.capacity() > 0; }
  bool HasFlash() const { return flash_.capacity() > 0; }

  // Mirrors SubsetStackBase::MayInstallInFlash: no filter or already
  // flash-resident admits for free; otherwise the ghost decides and a veto
  // is counted.
  bool MayInstallInFlash(BlockKey key) {
    if (!admission_.has_value() || flash_.Contains(key)) {
      return true;
    }
    if (admission_->ShouldAdmit(key)) {
      return true;
    }
    ++counters_.flash_admission_rejects;
    return false;
  }

  void EnsureFlashSlot(BlockKey key) {
    if (flash_.Contains(key)) {
      flash_.Touch(key);
      return;
    }
    std::optional<OracleBlock> evicted;
    flash_.Insert(key, &evicted);
    if (evicted.has_value()) {
      // Subset maintenance: the evicted block leaves RAM too; if either
      // copy was dirty the requester pays a synchronous filer write.
      bool ram_copy_dirty = false;
      if (HasRam()) {
        OracleBlock ram_copy;
        if (ram_.Remove(evicted->key, &ram_copy)) {
          ram_copy_dirty = ram_copy.dirty;
        }
      }
      if (evicted->dirty || ram_copy_dirty) {
        ++counters_.sync_flash_evictions;
        ++counters_.filer_writebacks;
        ++counters_.sync_filer_writes;
      }
    }
  }

  void InstallInRam(BlockKey key) {
    std::optional<OracleBlock> evicted;
    ram_.Insert(key, &evicted);
    if (evicted.has_value() && evicted->dirty) {
      ++counters_.sync_ram_evictions;
      WritebackFromRam(evicted->key, /*requester_waits=*/true);
    }
  }

  void WritebackFromRam(BlockKey key, bool requester_waits) {
    if (!HasFlash()) {
      ++counters_.filer_writebacks;
      if (requester_waits) {
        ++counters_.sync_filer_writes;
      }
      return;
    }
    WritebackFromRamToBelow(key, requester_waits);
  }

  virtual void WritebackFromRamToBelow(BlockKey key, bool requester_waits) = 0;
  virtual void WriteWithoutRam(BlockKey key) = 0;

  StackConfig config_;
  OracleLru ram_;
  OracleLru flash_;
  // Engaged only under AdmissionPolicy::kFlashield with a flash tier.
  std::optional<OracleAdmissionFilter> admission_;
};

class OracleNaive : public OracleSubsetBase {
 public:
  using OracleSubsetBase::OracleSubsetBase;

  bool FlushOneFlashBlock() override {
    const std::optional<BlockKey> key = flash_.OldestDirty(Medium::kFlash);
    if (!key.has_value()) {
      return false;
    }
    flash_.MarkClean(*key);
    ++counters_.filer_writebacks;
    ++counters_.sync_filer_writes;
    return true;
  }

 protected:
  void ApplyFlashArrival(BlockKey key, bool requester_waits) {
    switch (config_.flash_policy) {
      case WritebackPolicy::kSync:
        ++counters_.filer_writebacks;
        if (requester_waits) {
          ++counters_.sync_filer_writes;
        }
        break;
      case WritebackPolicy::kAsync:
        ++counters_.filer_writebacks;
        break;
      default:
        flash_.MarkDirty(key);
        break;
    }
  }

  void WritebackFromRamToBelow(BlockKey key, bool requester_waits) override {
    // The subset invariant guarantees the flash copy exists.
    FLASHSIM_CHECK(flash_.Contains(key));
    ++counters_.flash_installs;
    ApplyFlashArrival(key, requester_waits);
  }

  void WriteWithoutRam(BlockKey key) override {
    EnsureFlashSlot(key);
    ++counters_.flash_installs;
    ApplyFlashArrival(key, /*requester_waits=*/true);
  }
};

class OracleLookaside : public OracleSubsetBase {
 public:
  using OracleSubsetBase::OracleSubsetBase;

  bool FlushOneFlashBlock() override {
    // Flash never holds dirty data.
    FLASHSIM_CHECK(flash_.dirty_count() == 0);
    return false;
  }

 protected:
  void WritebackFromRamToBelow(BlockKey key, bool requester_waits) override {
    ++counters_.filer_writebacks;
    if (!requester_waits) {
      // Enqueued on the background writer; the flash refresh is counted at
      // enqueue time (mirrors LookasideStack). Without admission filtering
      // RAM ⊆ flash makes the refresh unconditional; a filter can leave the
      // block RAM-only, with nothing in flash to refresh.
      if (!admission_.has_value() || flash_.Contains(key)) {
        ++counters_.flash_installs;
      }
      return;
    }
    ++counters_.sync_filer_writes;
    if (flash_.Contains(key)) {
      ++counters_.flash_installs;
    }
  }

  void WriteWithoutRam(BlockKey key) override {
    ++counters_.filer_writebacks;
    ++counters_.sync_filer_writes;
    if (!MayInstallInFlash(key)) {
      return;
    }
    EnsureFlashSlot(key);
    ++counters_.flash_installs;
  }
};

// ----------------------------------------------------------------------------
// Unified oracle — mirrors src/arch/unified_stack.cc.

class OracleUnified : public OracleStack {
 public:
  explicit OracleUnified(const StackConfig& config)
      : config_(config),
        cache_(config.ram_blocks, config.flash_blocks, config.replacement) {
    if (config.admission == AdmissionPolicy::kFlashield && config.flash_blocks > 0) {
      admission_.emplace(config.flash_blocks);
    }
  }

  OracleHit Read(BlockKey key) override {
    if (cache_.Contains(key)) {
      cache_.Touch(key);
      if (cache_.MediumOf(key) == Medium::kRam) {
        ++counters_.ram_hits;
        return OracleHit::kRam;
      }
      ++counters_.flash_hits;
      return OracleHit::kFlash;
    }
    ++counters_.filer_reads;
    std::optional<Medium> medium;
    if (AdmitInsert(key)) {
      medium = InsertBlock(key);
    }
    if (medium.has_value() && *medium == Medium::kFlash) {
      ++counters_.flash_installs;
    }
    return OracleHit::kFiler;
  }

  void Write(BlockKey key) override {
    std::optional<Medium> medium;
    if (!cache_.Contains(key)) {
      if (AdmitInsert(key)) {
        medium = InsertBlock(key);
      }
      if (!medium.has_value()) {
        // Zero-capacity cache or admission veto: synchronous filer write.
        ++counters_.filer_writebacks;
        ++counters_.sync_filer_writes;
        return;
      }
    } else {
      cache_.Touch(key);
      medium = cache_.MediumOf(key);
    }
    if (*medium == Medium::kFlash) {
      ++counters_.flash_installs;
    }
    const WritebackPolicy policy =
        *medium == Medium::kRam ? config_.ram_policy : config_.flash_policy;
    switch (policy) {
      case WritebackPolicy::kSync:
        ++counters_.filer_writebacks;
        ++counters_.sync_filer_writes;
        break;
      case WritebackPolicy::kAsync:
        ++counters_.filer_writebacks;
        break;
      default:
        cache_.MarkDirty(key);
        break;
    }
  }

  bool FlushOneRamBlock() override { return FlushOneOf(Medium::kRam); }
  bool FlushOneFlashBlock() override { return FlushOneOf(Medium::kFlash); }

  void Invalidate(BlockKey key) override { cache_.Remove(key); }
  bool Holds(BlockKey key) const override { return cache_.Contains(key); }
  bool HoldsDirty(BlockKey key) const override {
    return cache_.Contains(key) && cache_.IsDirty(key);
  }

  uint64_t RamResident() const override { return CountMedium(Medium::kRam); }
  uint64_t FlashResident() const override { return CountMedium(Medium::kFlash); }
  uint64_t DirtyBlocks() const override { return cache_.dirty_count(); }

  Snapshot TakeSnapshot() const override {
    Snapshot snap;
    snap.caches = {cache_.SnapshotLru()};
    snap.dirty_orders = {cache_.SnapshotDirty(Medium::kRam),
                         cache_.SnapshotDirty(Medium::kFlash)};
    return snap;
  }

 private:
  // Mirrors UnifiedStack::AdmitInsert: the filter gates every miss-path
  // insert (the unified chain cannot predict the landing medium up front).
  bool AdmitInsert(BlockKey key) {
    if (!admission_.has_value()) {
      return true;
    }
    if (admission_->ShouldAdmit(key)) {
      return true;
    }
    ++counters_.flash_admission_rejects;
    return false;
  }

  std::optional<Medium> InsertBlock(BlockKey key) {
    std::optional<OracleBlock> evicted;
    if (!cache_.Insert(key, &evicted)) {
      return std::nullopt;
    }
    if (evicted.has_value() && evicted->dirty) {
      ++counters_.sync_flash_evictions;
      ++counters_.filer_writebacks;
      ++counters_.sync_filer_writes;
    }
    return cache_.MediumOf(key);
  }

  bool FlushOneOf(Medium medium) {
    const std::optional<BlockKey> key = cache_.OldestDirty(medium);
    if (!key.has_value()) {
      return false;
    }
    cache_.MarkClean(*key);
    ++counters_.filer_writebacks;
    ++counters_.sync_filer_writes;
    return true;
  }

  uint64_t CountMedium(Medium medium) const {
    uint64_t count = 0;
    for (const OracleBlock& block : cache_.SnapshotLru()) {
      if (block.medium == medium) {
        ++count;
      }
    }
    return count;
  }

  StackConfig config_;
  OracleLru cache_;
  // Engaged only under AdmissionPolicy::kFlashield with flash buffers.
  std::optional<OracleAdmissionFilter> admission_;
};

std::vector<OracleBlock> SnapLru(const LruBlockCache& cache) {
  std::vector<OracleBlock> out;
  out.reserve(cache.size());
  cache.ForEach([&](BlockKey key, Medium medium, bool dirty) {
    out.push_back({key, medium, dirty});
  });
  return out;
}

std::vector<BlockKey> SnapDirty(const LruBlockCache& cache, Medium want) {
  std::vector<BlockKey> out;
  cache.ForEachDirty([&](BlockKey key, Medium medium) {
    if (medium == want) {
      out.push_back(key);
    }
  });
  return out;
}

}  // namespace

OracleCoherence::OracleCoherence(CoherenceModel model, int num_hosts, SimDuration lease_ns,
                                 OracleResidencyView& view)
    : model_(model),
      num_hosts_(num_hosts),
      lease_ns_(lease_ns),
      view_(&view),
      leases_(static_cast<size_t>(num_hosts)) {
  FLASHSIM_CHECK(num_hosts >= 1);
  FLASHSIM_CHECK(model != CoherenceModel::kLease || lease_ns > 0);
}

// Protocol-driven drop: the copy goes, and with it the host's lease entry
// (mirrors LeaseProtocol::OnCopyDropped / the explicit Erase on writes).
void OracleCoherence::Drop(int host, BlockKey key) {
  view_->DropCopy(host, key);
  leases_[static_cast<size_t>(host)].erase(key);
}

// A read miss must not fetch around a remote Dirty copy: every other host
// holding the block dirty pays recall callback + data flush (2 messages)
// and loses the copy. Longhand mirror of CoherenceProtocol::ReconcileDirty.
void OracleCoherence::ReconcileDirty(int reader, BlockKey key) {
  for (int other = 0; other < num_hosts_; ++other) {
    if (other == reader || !view_->HoldsDirty(other, key)) {
      continue;
    }
    totals_.invalidation_messages += 2;
    ++totals_.dirty_fetches;
    Drop(other, key);
  }
}

void OracleCoherence::OnRead(int host, BlockKey key, SimTime now, SimTime granted) {
  switch (model_) {
    case CoherenceModel::kPerfect:
      return;  // reads never enter the protocol
    case CoherenceModel::kDirectory:
      if (view_->HoldsCopy(host, key)) {
        return;  // callbacks keep cached copies valid: free
      }
      // Miss: lookup request + reply around the directory service.
      ++totals_.lookups;
      totals_.invalidation_messages += 2;
      ++totals_.stalled_reads;
      ReconcileDirty(host, key);
      return;
    case CoherenceModel::kLease: {
      auto& table = leases_[static_cast<size_t>(host)];
      if (view_->HoldsCopy(host, key)) {
        const auto it = table.find(key);
        if (it != table.end() && it->second > now) {
          return;  // live lease: protocol-silent
        }
        // Expired lease on a still-valid copy: renewal round trip.
        ++totals_.lookups;
        ++totals_.lease_renewals;
        totals_.invalidation_messages += 2;
        ++totals_.stalled_reads;
        table[key] = granted + lease_ns_;
        return;
      }
      // Miss: the lookup reply carries a fresh lease.
      ++totals_.lookups;
      ++totals_.lease_grants;
      totals_.invalidation_messages += 2;
      ++totals_.stalled_reads;
      ReconcileDirty(host, key);
      table[key] = granted + lease_ns_;
      return;
    }
  }
}

void OracleCoherence::OnWrite(int host, BlockKey key, SimTime now) {
  // The stale set, longhand: every *other* host whose oracle stack holds
  // the block (the real side reads the same set out of the directory).
  bool any = false;
  for (int other = 0; other < num_hosts_; ++other) {
    if (other != host && view_->HoldsCopy(other, key)) {
      any = true;
      break;
    }
  }
  if (model_ == CoherenceModel::kPerfect) {
    // Zero-cost counting model; the rig runs it with legacy charging off,
    // so copies drop for free.
    for (int other = 0; other < num_hosts_; ++other) {
      if (other != host && view_->HoldsCopy(other, key)) {
        Drop(other, key);
      }
    }
    return;
  }
  if (!any) {
    return;  // sole holder: implicitly Exclusive/Dirty, no transaction
  }
  ++totals_.invalidation_messages;  // report to the directory
  for (int other = 0; other < num_hosts_; ++other) {
    if (other == host || !view_->HoldsCopy(other, key)) {
      continue;
    }
    if (model_ == CoherenceModel::kDirectory) {
      totals_.invalidation_messages += 2;  // callback + ack
      ++totals_.acks;
    } else {
      // Lease: only holders whose lease is still live at the write get a
      // callback + ack break; expired holders are dropped silently.
      const auto& table = leases_[static_cast<size_t>(other)];
      const auto it = table.find(key);
      if (it != table.end() && it->second > now) {
        totals_.invalidation_messages += 2;
        ++totals_.acks;
        ++totals_.lease_breaks;
      }
    }
    Drop(other, key);
  }
  ++totals_.invalidation_messages;  // exclusivity grant back to the writer
  ++totals_.stalled_writes;
}

std::optional<SimTime> OracleCoherence::LeaseExpiry(int host, BlockKey key) const {
  const auto& table = leases_[static_cast<size_t>(host)];
  const auto it = table.find(key);
  if (it == table.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::unique_ptr<OracleStack> MakeOracleStack(Architecture arch, const StackConfig& config) {
  switch (arch) {
    case Architecture::kNaive:
      // The naive writeback path requires RAM ⊆ flash, which an admission
      // filter deliberately breaks (SimConfig::Validate rejects it too).
      FLASHSIM_CHECK(config.admission == AdmissionPolicy::kAll);
      return std::make_unique<OracleNaive>(config);
    case Architecture::kLookaside:
      return std::make_unique<OracleLookaside>(config);
    case Architecture::kUnified:
      return std::make_unique<OracleUnified>(config);
  }
  FLASHSIM_CHECK(false);
  return nullptr;
}

OracleStack::Snapshot SnapshotRealStack(Architecture arch, const CacheStack& stack) {
  OracleStack::Snapshot snap;
  switch (arch) {
    case Architecture::kNaive:
    case Architecture::kLookaside: {
      const auto& subset = static_cast<const SubsetStackBase&>(stack);
      snap.caches = {SnapLru(subset.ram_cache()), SnapLru(subset.flash_cache())};
      snap.dirty_orders = {SnapDirty(subset.ram_cache(), Medium::kRam),
                           SnapDirty(subset.flash_cache(), Medium::kFlash)};
      break;
    }
    case Architecture::kUnified: {
      const auto& unified = static_cast<const UnifiedStack&>(stack);
      snap.caches = {SnapLru(unified.cache())};
      snap.dirty_orders = {SnapDirty(unified.cache(), Medium::kRam),
                           SnapDirty(unified.cache(), Medium::kFlash)};
      break;
    }
  }
  return snap;
}

}  // namespace flashsim
