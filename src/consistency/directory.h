// Global cache-consistency directory (§3.8, §7.9).
//
// The paper sidesteps choosing a consistency protocol: the simulator
// invalidates stale copies instantly using global knowledge when a new
// version of a block is first written into any cache, and *counts* the
// invalidations (it does not model protocol traffic). This directory is
// that global knowledge: a map from block to the set of hosts caching it.
//
// The invalidation rate — the fraction of application block writes that
// must invalidate a copy elsewhere — is the metric of Figs 11 and 12.
#ifndef FLASHSIM_SRC_CONSISTENCY_DIRECTORY_H_
#define FLASHSIM_SRC_CONSISTENCY_DIRECTORY_H_

#include <cstdint>

#include "src/trace/record.h"
#include "src/util/assert.h"
#include "src/util/flat_hash.h"

namespace flashsim {

class Directory {
 public:
  static constexpr int kMaxHosts = 64;

  explicit Directory(int num_hosts) : num_hosts_(num_hosts) {
    FLASHSIM_CHECK(num_hosts >= 1 && num_hosts <= kMaxHosts);
  }

  // Residency bookkeeping, driven by the cache stacks.
  void NoteCached(int host, BlockKey key);
  void NoteDropped(int host, BlockKey key);

  // Pre-sizes the holders index. `blocks` = the most blocks that can be
  // cached anywhere at once (the sum of all hosts' cache capacities), the
  // exact upper bound on live entries.
  void Reserve(uint64_t blocks) { holders_.Reserve(static_cast<size_t>(blocks)); }

  // Load-triggered rehashes of the holders index (0 when Reserve held).
  uint64_t index_rehashes() const { return holders_.growth_rehashes(); }

  // Called once per application block write by `host`. Returns the bitmask
  // of *other* hosts whose copies are now stale and must be invalidated;
  // the caller removes the block from those hosts' caches. Counts the write
  // (and whether it invalidated anything) when `measured` is true.
  uint64_t OnBlockWrite(int host, BlockKey key, bool measured);

  bool IsCachedBy(int host, BlockKey key) const;
  uint64_t holders(BlockKey key) const;

  uint64_t measured_writes() const { return measured_writes_; }
  uint64_t invalidating_writes() const { return invalidating_writes_; }
  uint64_t invalidations() const { return invalidations_; }
  // Figs 11/12 y-axis: % of block writes requiring invalidation.
  double invalidation_rate() const {
    return measured_writes_ == 0 ? 0.0
                                 : static_cast<double>(invalidating_writes_) /
                                       static_cast<double>(measured_writes_);
  }

 private:
  int num_hosts_;
  FlatHashMap<uint64_t> holders_;  // block -> host bitmask
  uint64_t measured_writes_ = 0;
  uint64_t invalidating_writes_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_CONSISTENCY_DIRECTORY_H_
