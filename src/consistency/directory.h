// Global cache-consistency directory (§3.8, §7.9).
//
// The paper sidesteps choosing a consistency protocol: the simulator
// invalidates stale copies instantly using global knowledge when a new
// version of a block is first written into any cache, and *counts* the
// invalidations (it does not model protocol traffic). This directory is
// that global knowledge: a map from block to the set of hosts caching it.
//
// The invalidation rate — the fraction of application block writes that
// must invalidate a copy elsewhere — is the metric of Figs 11 and 12.
//
// Holder-set representation scales with the fleet. Up to 64 hosts the set
// is a single word stored inline in the block index — the layout every
// paper figure runs on, untouched. Wider fleets (the boot-storm study runs
// 1024 desktops) switch the whole directory to slot mode: the index maps
// block -> slot into a pool of ceil(num_hosts/64)-word bitmasks, recycled
// through a free list when a block's last copy is dropped. The mode is
// fixed at construction by num_hosts, never per key.
#ifndef FLASHSIM_SRC_CONSISTENCY_DIRECTORY_H_
#define FLASHSIM_SRC_CONSISTENCY_DIRECTORY_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "src/trace/record.h"
#include "src/util/assert.h"
#include "src/util/flat_hash.h"

namespace flashsim {

class Directory {
 public:
  // 64 was the one-word-bitmask ceiling; 4096 covers the fleet-scale
  // studies with 64 words per holder set. Raise freely — nothing below is
  // quadratic in it.
  static constexpr int kMaxHosts = 4096;

  // The stale-holder set OnBlockWrite reports: a read-only view into the
  // directory's scratch mask, valid until the next OnBlockWrite call.
  class StaleSet {
   public:
    bool any() const { return count_ != 0; }
    int count() const { return count_; }
    bool Contains(int host) const {
      return ((words_[static_cast<size_t>(host) >> 6] >> (host & 63)) & 1ULL) != 0;
    }

   private:
    friend class Directory;
    StaleSet(const uint64_t* words, int count) : words_(words), count_(count) {}
    const uint64_t* words_;
    int count_;
  };

  explicit Directory(int num_hosts)
      : num_hosts_(num_hosts), words_(static_cast<size_t>((num_hosts + 63) / 64)) {
    FLASHSIM_CHECK(num_hosts >= 1 && num_hosts <= kMaxHosts);
    stale_.assign(words_, 0);
  }

  // Residency bookkeeping, driven by the cache stacks.
  void NoteCached(int host, BlockKey key);
  void NoteDropped(int host, BlockKey key);

  // Pre-sizes the holders index (and, in slot mode, the mask pool).
  // `blocks` = the most blocks that can be cached anywhere at once (the sum
  // of all hosts' cache capacities), the exact upper bound on live entries.
  void Reserve(uint64_t blocks) {
    holders_.Reserve(static_cast<size_t>(blocks));
    if (words_ > 1) {
      pool_.reserve(static_cast<size_t>(blocks) * words_);
    }
  }

  // Load-triggered rehashes of the holders index (0 when Reserve held).
  uint64_t index_rehashes() const { return holders_.growth_rehashes(); }

  // Called once per application block write by `host`. Returns the set of
  // *other* hosts whose copies are now stale and must be invalidated; the
  // caller removes the block from those hosts' caches. Counts the write
  // (and whether it invalidated anything) when `measured` is true. The
  // returned view is invalidated by the next OnBlockWrite call.
  StaleSet OnBlockWrite(int host, BlockKey key, bool measured);

  bool IsCachedBy(int host, BlockKey key) const;
  // Whether `host` is the block's one and only holder. The partitioned
  // engine's private-write fast path (DESIGN.md §12): a sole-holder write
  // provably invalidates nothing, so PerfectProtocol::OnWrite reduces to
  // this directory's commutative counters and the write can certify into a
  // parallel batch without coordinator involvement.
  bool SoleHolder(int host, BlockKey key) const;

  // Mutation generation: bumped on every NoteCached/NoteDropped. Certified
  // batch members never change residency, so a batch's writes snapshot the
  // generation at certification and the engine DCHECKs it unchanged at the
  // post-pass — the partition-local check that no cross-partition holder
  // appeared between certification and execution.
  uint64_t generation() const { return generation_; }
  // Visits every holder of `key` in ascending host order — deterministic in
  // both inline and slot mode, which the message-generating coherence
  // protocols (coherence.h) depend on for reproducible message schedules.
  // `fn` must not mutate the directory (snapshot first if it needs to drop
  // copies mid-iteration; see CoherenceProtocol::ReconcileDirty).
  template <typename Fn>
  void ForEachHolder(BlockKey key, Fn&& fn) const {
    const uint64_t* entry = holders_.Find(key);
    if (entry == nullptr) {
      return;
    }
    const uint64_t* mask = words_ == 1 ? entry : SlotWords(*entry - 1);
    for (size_t w = 0; w < words_; ++w) {
      uint64_t bits = mask[w];
      while (bits != 0) {
        fn(static_cast<int>((w << 6) + static_cast<size_t>(std::countr_zero(bits))));
        bits &= bits - 1;
      }
    }
  }
  // The one-word holder bitmask; only meaningful (and only allowed) for
  // fleets of at most 64 hosts. Wide fleets use IsCachedBy/holder_count.
  uint64_t holders(BlockKey key) const;
  int holder_count(BlockKey key) const;

  uint64_t measured_writes() const { return measured_writes_; }
  uint64_t invalidating_writes() const { return invalidating_writes_; }
  uint64_t invalidations() const { return invalidations_; }
  // Figs 11/12 y-axis: % of block writes requiring invalidation.
  double invalidation_rate() const {
    return measured_writes_ == 0 ? 0.0
                                 : static_cast<double>(invalidating_writes_) /
                                       static_cast<double>(measured_writes_);
  }

 private:
  // Slot mode only: the index stores slot+1 (0 = absent to FlatHashMap's
  // default-constructed value); a slot names words_ consecutive pool words.
  uint64_t* SlotWords(uint64_t slot) { return pool_.data() + slot * words_; }
  const uint64_t* SlotWords(uint64_t slot) const { return pool_.data() + slot * words_; }
  uint64_t AllocSlot();

  int num_hosts_;
  size_t words_;                   // holder-mask width; 1 = inline mode
  FlatHashMap<uint64_t> holders_;  // block -> mask (inline) or slot+1 (pool)
  std::vector<uint64_t> pool_;     // slot-mode mask storage
  std::vector<uint64_t> free_slots_;
  std::vector<uint64_t> stale_;    // OnBlockWrite scratch, words_ wide
  uint64_t measured_writes_ = 0;
  uint64_t invalidating_writes_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_CONSISTENCY_DIRECTORY_H_
