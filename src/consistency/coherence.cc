#include "src/consistency/coherence.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/flat_hash.h"

namespace flashsim {

const char* CoherenceModelName(CoherenceModel model) {
  switch (model) {
    case CoherenceModel::kPerfect:
      return "perfect";
    case CoherenceModel::kDirectory:
      return "directory";
    case CoherenceModel::kLease:
      return "lease";
  }
  return "?";
}

std::optional<CoherenceModel> ParseCoherenceModel(const std::string& name) {
  if (name == "perfect") {
    return CoherenceModel::kPerfect;
  }
  if (name == "directory") {
    return CoherenceModel::kDirectory;
  }
  if (name == "lease") {
    return CoherenceModel::kLease;
  }
  return std::nullopt;
}

const char* SharingStateName(SharingState state) {
  switch (state) {
    case SharingState::kInvalid:
      return "I";
    case SharingState::kShared:
      return "S";
    case SharingState::kExclusive:
      return "E";
    case SharingState::kDirty:
      return "D";
  }
  return "?";
}

CoherenceCounters& CoherenceCounters::operator+=(const CoherenceCounters& o) {
  lookups += o.lookups;
  invalidation_messages += o.invalidation_messages;
  acks += o.acks;
  lease_grants += o.lease_grants;
  lease_renewals += o.lease_renewals;
  lease_breaks += o.lease_breaks;
  dirty_fetches += o.dirty_fetches;
  stalled_reads += o.stalled_reads;
  stalled_read_ns += o.stalled_read_ns;
  stalled_writes += o.stalled_writes;
  stalled_write_ns += o.stalled_write_ns;
  return *this;
}

CoherenceProtocol::CoherenceProtocol(const CoherenceParams& params, Directory* directory,
                                     CoherenceTransport* transport)
    : params_(params),
      directory_(directory),
      transport_(transport),
      per_host_(static_cast<size_t>(params.num_hosts)) {
  FLASHSIM_CHECK(params.num_hosts >= 1);
  FLASHSIM_CHECK(directory != nullptr && transport != nullptr);
}

CoherenceCounters CoherenceProtocol::totals() const {
  CoherenceCounters sum;
  for (const CoherenceCounters& c : per_host_) {
    sum += c;
  }
  return sum;
}

SharingState CoherenceProtocol::StateOf(BlockKey key) const {
  int holders = 0;
  bool dirty = false;
  directory_->ForEachHolder(key, [&](int host) {
    ++holders;
    if (transport_->HoldsDirty(host, key)) {
      dirty = true;
    }
  });
  if (holders == 0) {
    return SharingState::kInvalid;
  }
  if (dirty) {
    return SharingState::kDirty;
  }
  return holders == 1 ? SharingState::kExclusive : SharingState::kShared;
}

SimTime CoherenceProtocol::ReconcileDirty(int reader, BlockKey key, SimTime ready) {
  // Snapshot first: DropCopy mutates the holder set mid-iteration otherwise.
  scratch_holders_.clear();
  directory_->ForEachHolder(key, [&](int host) {
    if (host != reader && transport_->HoldsDirty(host, key)) {
      scratch_holders_.push_back(host);
    }
  });
  if (scratch_holders_.empty()) {
    return ready;
  }
  CoherenceCounters& c = at(reader);
  SimTime settled = ready;
  for (const int host : scratch_holders_) {
    const SimTime recall = transport_->FilerToHost(host, ready, /*carries_data=*/false);
    const SimTime flush = transport_->HostToFiler(host, recall, /*carries_data=*/true);
    const SimTime done = transport_->FilerService(key, flush, params_.flush_service_ns);
    transport_->DropCopy(host, key);
    OnCopyDropped(host, key);
    c.invalidation_messages += 2;
    ++c.dirty_fetches;
    settled = std::max(settled, done);
  }
  return settled;
}

namespace {

// The paper's zero-cost counting directory (§3.8): the pre-protocol
// ExecuteOp invalidation block, verbatim — including the legacy
// --invalidation=async|blocking packet charging — so every committed golden
// digest reproduces byte-identically. Reads never enter the protocol.
class PerfectProtocol final : public CoherenceProtocol {
 public:
  using CoherenceProtocol::CoherenceProtocol;

  SimTime BeforeRead(int host, BlockKey key, SimTime now) override {
    (void)host;
    (void)key;
    return now;
  }

  SimTime OnWrite(int host, BlockKey key, SimTime now, bool measured) override {
    const Directory::StaleSet stale = directory_->OnBlockWrite(host, key, measured);
    if (!stale.any()) {
      return now;
    }
    SimTime ack_deadline = now;
    const bool charge = params_.charge_legacy_traffic;
    SimTime report_arrival = now;
    CoherenceCounters& c = at(host);
    if (charge) {
      report_arrival = transport_->HostToFiler(host, now, /*carries_data=*/false);
      ++c.invalidation_messages;
    }
    for (int other = 0; other < params_.num_hosts; ++other) {
      if (!stale.Contains(other)) {
        continue;
      }
      transport_->DropCopy(other, key);
      if (charge) {
        const SimTime callback =
            transport_->FilerToHost(other, report_arrival, /*carries_data=*/false);
        const SimTime ack = transport_->HostToFiler(other, callback, /*carries_data=*/false);
        c.invalidation_messages += 2;
        ack_deadline = std::max(ack_deadline, ack);
      }
    }
    if (params_.legacy_traffic_blocks_writer) {
      return ack_deadline;
    }
    return now;
  }
};

// Synchronous lookup + invalidate round trips. Cached copies read for free
// (callbacks keep them valid); every miss pays a directory lookup round
// trip — and reconciles a remote Dirty copy — before the data fetch; a
// write that finds other holders pays report -> per-holder callback ->
// per-holder ack -> grant, and the writer blocks until the grant lands.
class DirectoryProtocol final : public CoherenceProtocol {
 public:
  using CoherenceProtocol::CoherenceProtocol;

  SimTime BeforeRead(int host, BlockKey key, SimTime now) override {
    if (transport_->HoldsCopy(host, key)) {
      return now;
    }
    CoherenceCounters& c = at(host);
    ++c.lookups;
    const SimTime request = transport_->HostToFiler(host, now, /*carries_data=*/false);
    SimTime served = transport_->FilerService(key, request, params_.directory_service_ns);
    served = ReconcileDirty(host, key, served);
    const SimTime granted = transport_->FilerToHost(host, served, /*carries_data=*/false);
    c.invalidation_messages += 2;  // lookup request + reply
    ++c.stalled_reads;
    c.stalled_read_ns += static_cast<uint64_t>(granted - now);
    return granted;
  }

  SimTime OnWrite(int host, BlockKey key, SimTime now, bool measured) override {
    const Directory::StaleSet stale = directory_->OnBlockWrite(host, key, measured);
    if (!stale.any()) {
      // Sole holder: the copy installed by the stack's Write is implicitly
      // Exclusive/Dirty — no transaction.
      return now;
    }
    CoherenceCounters& c = at(host);
    const SimTime report = transport_->HostToFiler(host, now, /*carries_data=*/false);
    const SimTime served = transport_->FilerService(key, report, params_.directory_service_ns);
    ++c.invalidation_messages;
    SimTime ack_deadline = served;
    for (int other = 0; other < params_.num_hosts; ++other) {
      if (!stale.Contains(other)) {
        continue;
      }
      transport_->DropCopy(other, key);
      const SimTime callback = transport_->FilerToHost(other, served, /*carries_data=*/false);
      ++c.invalidation_messages;
      if (skip_acks_) {
        continue;
      }
      const SimTime ack = transport_->HostToFiler(other, callback, /*carries_data=*/false);
      ++c.invalidation_messages;
      ++c.acks;
      ack_deadline = std::max(ack_deadline, ack);
    }
    const SimTime grant = transport_->FilerToHost(host, ack_deadline, /*carries_data=*/false);
    ++c.invalidation_messages;
    ++c.stalled_writes;
    c.stalled_write_ns += static_cast<uint64_t>(grant - now);
    return grant;
  }

  // Seam: the directory "forgets" that exclusivity needs acknowledged
  // invalidations — callbacks still go out, but nobody waits for (or
  // counts) the acks, so the writer proceeds before remote copies are
  // provably gone. The longhand oracle counts the missing acks.
  void test_only_break_protocol() override { skip_acks_ = true; }

 private:
  bool skip_acks_ = false;
};

// Time-bounded read leases with callback breaks. A cached copy reads for
// free while its lease is live; an expired lease renews with a round trip
// (the copy itself is still valid — writers invalidate every holder). The
// payoff is on the write path: only holders with *live* leases get a
// callback + ack and make the writer wait; expired holders are dropped
// silently. Hot read-shared blocks renew once per lease_ns instead of
// paying per-write callback storms to cold sharers.
class LeaseProtocol final : public CoherenceProtocol {
 public:
  LeaseProtocol(const CoherenceParams& params, Directory* directory,
                CoherenceTransport* transport)
      : CoherenceProtocol(params, directory, transport),
        leases_(static_cast<size_t>(params.num_hosts)) {
    FLASHSIM_CHECK(params.lease_ns > 0);
  }

  SimTime BeforeRead(int host, BlockKey key, SimTime now) override {
    CoherenceCounters& c = at(host);
    if (transport_->HoldsCopy(host, key)) {
      if (ExpiryOf(host, key) > now) {
        return now;  // live lease: protocol-silent read
      }
      // Expired lease on a still-valid copy: renew with the directory.
      ++c.lookups;
      ++c.lease_renewals;
      const SimTime request = transport_->HostToFiler(host, now, /*carries_data=*/false);
      const SimTime served = transport_->FilerService(key, request, params_.directory_service_ns);
      const SimTime granted = transport_->FilerToHost(host, served, /*carries_data=*/false);
      c.invalidation_messages += 2;
      SetExpiry(host, key, granted + params_.lease_ns);
      ++c.stalled_reads;
      c.stalled_read_ns += static_cast<uint64_t>(granted - now);
      return granted;
    }
    // Miss: the lookup reply carries the lease grant.
    ++c.lookups;
    ++c.lease_grants;
    const SimTime request = transport_->HostToFiler(host, now, /*carries_data=*/false);
    SimTime served = transport_->FilerService(key, request, params_.directory_service_ns);
    served = ReconcileDirty(host, key, served);
    const SimTime granted = transport_->FilerToHost(host, served, /*carries_data=*/false);
    c.invalidation_messages += 2;
    SetExpiry(host, key, granted + params_.lease_ns);
    ++c.stalled_reads;
    c.stalled_read_ns += static_cast<uint64_t>(granted - now);
    return granted;
  }

  SimTime OnWrite(int host, BlockKey key, SimTime now, bool measured) override {
    const Directory::StaleSet stale = directory_->OnBlockWrite(host, key, measured);
    if (!stale.any()) {
      return now;
    }
    CoherenceCounters& c = at(host);
    const SimTime report = transport_->HostToFiler(host, now, /*carries_data=*/false);
    const SimTime served = transport_->FilerService(key, report, params_.directory_service_ns);
    ++c.invalidation_messages;
    SimTime ack_deadline = served;
    for (int other = 0; other < params_.num_hosts; ++other) {
      if (!stale.Contains(other)) {
        continue;
      }
      const bool live = ExpiryOf(other, key) > now;
      if (live && skip_breaks_) {
        // Seam: the writer "forgets" live leases — the holder keeps both
        // its lease and its now-stale copy. The oracle sees the missed
        // break and, soon after, the stale hit.
        continue;
      }
      if (live) {
        const SimTime callback = transport_->FilerToHost(other, served, /*carries_data=*/false);
        const SimTime ack = transport_->HostToFiler(other, callback, /*carries_data=*/false);
        c.invalidation_messages += 2;
        ++c.acks;
        ++c.lease_breaks;
        ack_deadline = std::max(ack_deadline, ack);
      }
      transport_->DropCopy(other, key);
      leases_[static_cast<size_t>(other)].Erase(key);
    }
    const SimTime grant = transport_->FilerToHost(host, ack_deadline, /*carries_data=*/false);
    ++c.invalidation_messages;
    ++c.stalled_writes;
    c.stalled_write_ns += static_cast<uint64_t>(grant - now);
    return grant;
  }

  std::optional<SimTime> LeaseExpiry(int host, BlockKey key) const override {
    const uint64_t* entry = leases_[static_cast<size_t>(host)].Find(key);
    if (entry == nullptr || *entry == 0) {
      return std::nullopt;
    }
    return static_cast<SimTime>(*entry - 1);
  }

  void test_only_break_protocol() override { skip_breaks_ = true; }

 protected:
  void OnCopyDropped(int host, BlockKey key) override {
    leases_[static_cast<size_t>(host)].Erase(key);
  }

 private:
  // Expiry is stored +1 so FlatHashMap's default 0 reads as "no lease"
  // (which compares as expired-forever, the correct default).
  SimTime ExpiryOf(int host, BlockKey key) const {
    const uint64_t* entry = leases_[static_cast<size_t>(host)].Find(key);
    return entry == nullptr || *entry == 0 ? 0 : static_cast<SimTime>(*entry - 1);
  }
  void SetExpiry(int host, BlockKey key, SimTime expiry) {
    leases_[static_cast<size_t>(host)][key] = static_cast<uint64_t>(expiry) + 1;
  }

  std::vector<FlatHashMap<uint64_t>> leases_;
  bool skip_breaks_ = false;
};

}  // namespace

std::unique_ptr<CoherenceProtocol> MakeCoherenceProtocol(const CoherenceParams& params,
                                                         Directory* directory,
                                                         CoherenceTransport* transport) {
  switch (params.model) {
    case CoherenceModel::kPerfect:
      return std::make_unique<PerfectProtocol>(params, directory, transport);
    case CoherenceModel::kDirectory:
      return std::make_unique<DirectoryProtocol>(params, directory, transport);
    case CoherenceModel::kLease:
      return std::make_unique<LeaseProtocol>(params, directory, transport);
  }
  FLASHSIM_CHECK(false);
  return nullptr;
}

}  // namespace flashsim
