// Coherence protocols over the consistency directory (DESIGN.md §15).
//
// The paper's model (§3.8) is a zero-cost perfect directory: stale copies
// vanish instantly on write and the simulator only *counts* invalidations.
// This layer makes the protocol real. Control messages (directory lookups,
// invalidation callbacks, acks, lease grants) travel the same network links
// and queue at the same filer as data, so contention on shared blocks shows
// up as latency on the I/O path instead of a counter.
//
// Three members on the `SimConfig::coherence` axis:
//
//   perfect    The paper's model, bit-for-bit: PerfectProtocol::OnWrite is
//              the pre-protocol ExecuteOp invalidation block verbatim
//              (including the legacy --invalidation=async|blocking message
//              charging), so every committed golden digest reproduces
//              byte-identically. Reads never enter the protocol.
//
//   directory  Synchronous lookup + invalidate round trips. Every read miss
//              pays a directory lookup round trip before the data fetch; a
//              write that finds other holders pays report -> per-holder
//              callback -> per-holder ack -> grant, and the writer blocks
//              until the grant returns.
//
//   lease      Time-bounded read leases with callback breaks. A cached copy
//              is readable for free while its lease is live; expired leases
//              renew with a round trip. Writers break only *live* remote
//              leases (callback + ack); expired holders are invalidated
//              silently — the lease win: hot read-shared blocks avoid
//              per-read directory traffic, and write-sharing pays for it.
//
// The per-block sharing state (Invalid/Shared/Exclusive/Dirty, MESI-style)
// is derived, not stored: the Directory holder set gives the copy set and
// the stacks' dirty bits distinguish Exclusive from Dirty. The protocols
// maintain the MESI single-writer invariant — a write invalidates all other
// copies, and a read miss first reconciles a remote Dirty copy (flush to
// filer + drop) — so `holders >= 2 implies nobody dirty` is checkable, and
// tests/coherence_protocol_test.cc checks it per step.
//
// Layering: this file depends only on the directory, sim time, and block
// keys. Everything the protocols need from the world — link timing, filer
// queueing, cache residency and dirty bits — comes through the
// CoherenceTransport interface, implemented by Simulation, the differential
// rig, and the protocol test net. Protocol code never draws RNG, so
// enabling a protocol cannot perturb the device-layer random streams.
#ifndef FLASHSIM_SRC_CONSISTENCY_COHERENCE_H_
#define FLASHSIM_SRC_CONSISTENCY_COHERENCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/consistency/directory.h"
#include "src/sim/sim_time.h"
#include "src/trace/record.h"

namespace flashsim {

enum class CoherenceModel : uint8_t {
  kPerfect = 0,    // zero-cost counting directory (the paper's model)
  kDirectory = 1,  // synchronous lookup + invalidate round trips
  kLease = 2,      // time-bounded read leases with callback breaks
};

const char* CoherenceModelName(CoherenceModel model);
std::optional<CoherenceModel> ParseCoherenceModel(const std::string& name);

// MESI-style per-block sharing state, derived from the directory holder set
// and the holders' dirty bits (see StateOf below).
enum class SharingState : uint8_t {
  kInvalid = 0,    // cached nowhere
  kShared = 1,     // >= 2 clean copies
  kExclusive = 2,  // exactly one copy, clean
  kDirty = 3,      // exactly one copy, modified
};

const char* SharingStateName(SharingState state);

// Protocol message and stall accounting. Totals surface in Metrics JSON and
// the differential oracle compares them per op against the longhand model.
struct CoherenceCounters {
  uint64_t lookups = 0;                // directory lookup requests (read misses)
  uint64_t invalidation_messages = 0;  // every control packet on the wire
  uint64_t acks = 0;                   // invalidation acks writers waited for
  uint64_t lease_grants = 0;           // fresh leases granted on fetch
  uint64_t lease_renewals = 0;         // expired-lease renewal round trips
  uint64_t lease_breaks = 0;           // live leases broken by a writer
  uint64_t dirty_fetches = 0;          // remote Dirty copies flushed for a read
  uint64_t stalled_reads = 0;          // reads that waited on protocol traffic
  uint64_t stalled_read_ns = 0;        // total read-path protocol stall
  uint64_t stalled_writes = 0;         // writes that waited on protocol traffic
  uint64_t stalled_write_ns = 0;       // total write-path protocol stall

  bool any() const {
    return lookups != 0 || invalidation_messages != 0 || acks != 0 ||
           lease_grants != 0 || lease_renewals != 0 || lease_breaks != 0 ||
           dirty_fetches != 0 || stalled_reads != 0 || stalled_read_ns != 0 ||
           stalled_writes != 0 || stalled_write_ns != 0;
  }
  CoherenceCounters& operator+=(const CoherenceCounters& o);
  friend bool operator==(const CoherenceCounters&, const CoherenceCounters&) = default;
};

// Everything a protocol needs from the simulated world. Message sends
// occupy link/filer resources and return arrival times; residency queries
// consult the real cache stacks (or, on the oracle side of the
// differential rig, the reference models).
class CoherenceTransport {
 public:
  virtual ~CoherenceTransport() = default;

  // A control (or data, when carries_data) packet host -> filer / filer ->
  // host; returns arrival time at the far end.
  virtual SimTime HostToFiler(int host, SimTime now, bool carries_data) = 0;
  virtual SimTime FilerToHost(int host, SimTime now, bool carries_data) = 0;

  // Occupies the filer shard owning `key` for `service`; returns completion.
  // Never draws RNG (unlike a data read) and never counts as a data
  // read/write, so audit conservation identities are untouched.
  virtual SimTime FilerService(BlockKey key, SimTime arrival, SimDuration service) = 0;

  // Drops `host`'s cached copy of `key` (stack Invalidate; the residency
  // listener updates the Directory).
  virtual void DropCopy(int host, BlockKey key) = 0;

  virtual bool HoldsCopy(int host, BlockKey key) const = 0;
  virtual bool HoldsDirty(int host, BlockKey key) const = 0;
};

struct CoherenceParams {
  CoherenceModel model = CoherenceModel::kPerfect;
  int num_hosts = 1;
  // Perfect only: reproduce the legacy --invalidation message charging
  // (SimConfig::invalidation_traffic). Non-perfect protocols charge their
  // own traffic and require these off.
  bool charge_legacy_traffic = false;
  bool legacy_traffic_blocks_writer = false;
  // Filer-side service time per directory control message.
  SimDuration directory_service_ns = 0;
  // Filer-side service time to absorb a reconciled dirty flush.
  SimDuration flush_service_ns = 0;
  // Lease only: read-lease lifetime.
  SimDuration lease_ns = 0;
};

class CoherenceProtocol {
 public:
  CoherenceProtocol(const CoherenceParams& params, Directory* directory,
                    CoherenceTransport* transport);
  virtual ~CoherenceProtocol() = default;

  // Protocol work before `host` reads `key` at `now` (lookup round trips,
  // dirty reconciliation, lease renewal). Returns the adjusted start time
  // for the stack's own read; == now when the read is protocol-silent.
  virtual SimTime BeforeRead(int host, BlockKey key, SimTime now) = 0;

  // Directory update + invalidation traffic after `host`'s stack accepted a
  // write of `key`. Returns the writer-visible completion time (> now when
  // the protocol makes the writer wait). Must be the only caller of
  // Directory::OnBlockWrite so invalidation counting stays single-sourced.
  virtual SimTime OnWrite(int host, BlockKey key, SimTime now, bool measured) = 0;

  // Derived MESI state of `key` right now. O(holders) — diagnostic and
  // test-net use, not hot path.
  SharingState StateOf(BlockKey key) const;

  CoherenceModel model() const { return params_.model; }
  const CoherenceCounters& host_counters(int host) const {
    return per_host_[static_cast<size_t>(host)];
  }
  CoherenceCounters totals() const;

  // Lease model only: `host`'s lease expiry on `key`, if one was granted
  // and the copy not since dropped. nullopt for other models. Diagnostic
  // and test-net use (the monotonicity invariant).
  virtual std::optional<SimTime> LeaseExpiry(int host, BlockKey key) const {
    (void)host;
    (void)key;
    return std::nullopt;
  }

  // Test-only: arm the protocol's deliberate-bug seam (DESIGN.md §15).
  // directory: OnWrite stops sending/counting/waiting-for acks. lease:
  // OnWrite stops breaking live leases (their holders keep stale copies).
  // The differential oracle must catch both (tests/differential_test.cc).
  virtual void test_only_break_protocol() {}

 protected:
  CoherenceCounters& at(int host) { return per_host_[static_cast<size_t>(host)]; }

  // Hook: the protocol dropped `host`'s copy through the transport (lease
  // cleanup). Not called for capacity evictions — those are invisible here
  // and any leftover lease entry is never consulted while stale.
  virtual void OnCopyDropped(int host, BlockKey key) {
    (void)host;
    (void)key;
  }

  // MESI M->I on remote read: each *other* holder with a dirty copy gets a
  // recall callback, flushes its version to the filer (data packet + filer
  // write service), and drops the copy, so the reader's subsequent fetch
  // observes the latest version. Returns the time the last flush settled
  // (== ready when there was no dirty holder). Stats charge to `reader`.
  SimTime ReconcileDirty(int reader, BlockKey key, SimTime ready);

  const CoherenceParams params_;
  Directory* const directory_;
  CoherenceTransport* const transport_;
  std::vector<CoherenceCounters> per_host_;
  std::vector<int> scratch_holders_;  // ReconcileDirty iteration snapshot
};

std::unique_ptr<CoherenceProtocol> MakeCoherenceProtocol(const CoherenceParams& params,
                                                         Directory* directory,
                                                         CoherenceTransport* transport);

}  // namespace flashsim

#endif  // FLASHSIM_SRC_CONSISTENCY_COHERENCE_H_
