#include "src/consistency/directory.h"

#include <bit>

namespace flashsim {

void Directory::NoteCached(int host, BlockKey key) {
  FLASHSIM_DCHECK(host >= 0 && host < num_hosts_);
  holders_[key] |= (1ULL << host);
}

void Directory::NoteDropped(int host, BlockKey key) {
  FLASHSIM_DCHECK(host >= 0 && host < num_hosts_);
  uint64_t* mask = holders_.Find(key);
  if (mask == nullptr) {
    return;
  }
  *mask &= ~(1ULL << host);
  if (*mask == 0) {
    holders_.Erase(key);
  }
}

uint64_t Directory::OnBlockWrite(int host, BlockKey key, bool measured) {
  FLASHSIM_DCHECK(host >= 0 && host < num_hosts_);
  uint64_t stale = 0;
  if (const uint64_t* mask = holders_.Find(key); mask != nullptr) {
    stale = *mask & ~(1ULL << host);
  }
  if (measured) {
    ++measured_writes_;
    if (stale != 0) {
      ++invalidating_writes_;
      invalidations_ += static_cast<uint64_t>(std::popcount(stale));
    }
  }
  return stale;
}

bool Directory::IsCachedBy(int host, BlockKey key) const {
  const uint64_t* mask = holders_.Find(key);
  return mask != nullptr && (*mask & (1ULL << host)) != 0;
}

uint64_t Directory::holders(BlockKey key) const {
  const uint64_t* mask = holders_.Find(key);
  return mask == nullptr ? 0 : *mask;
}

}  // namespace flashsim
