#include "src/consistency/directory.h"

#include <algorithm>
#include <bit>

namespace flashsim {

uint64_t Directory::AllocSlot() {
  if (!free_slots_.empty()) {
    const uint64_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const uint64_t slot = pool_.size() / words_;
  pool_.resize(pool_.size() + words_, 0);
  return slot;
}

void Directory::NoteCached(int host, BlockKey key) {
  FLASHSIM_DCHECK(host >= 0 && host < num_hosts_);
  ++generation_;
  if (words_ == 1) {
    holders_[key] |= (1ULL << host);
    return;
  }
  uint64_t& entry = holders_[key];
  if (entry == 0) {
    entry = AllocSlot() + 1;
  }
  SlotWords(entry - 1)[static_cast<size_t>(host) >> 6] |= (1ULL << (host & 63));
}

void Directory::NoteDropped(int host, BlockKey key) {
  FLASHSIM_DCHECK(host >= 0 && host < num_hosts_);
  ++generation_;
  uint64_t* entry = holders_.Find(key);
  if (entry == nullptr) {
    return;
  }
  if (words_ == 1) {
    *entry &= ~(1ULL << host);
    if (*entry == 0) {
      holders_.Erase(key);
    }
    return;
  }
  uint64_t* mask = SlotWords(*entry - 1);
  mask[static_cast<size_t>(host) >> 6] &= ~(1ULL << (host & 63));
  for (size_t w = 0; w < words_; ++w) {
    if (mask[w] != 0) {
      return;
    }
  }
  free_slots_.push_back(*entry - 1);
  holders_.Erase(key);
}

Directory::StaleSet Directory::OnBlockWrite(int host, BlockKey key, bool measured) {
  FLASHSIM_DCHECK(host >= 0 && host < num_hosts_);
  std::fill(stale_.begin(), stale_.end(), 0);
  int stale_count = 0;
  if (const uint64_t* entry = holders_.Find(key); entry != nullptr) {
    const uint64_t* mask = words_ == 1 ? entry : SlotWords(*entry - 1);
    std::copy(mask, mask + words_, stale_.begin());
    stale_[static_cast<size_t>(host) >> 6] &= ~(1ULL << (host & 63));
    for (size_t w = 0; w < words_; ++w) {
      stale_count += std::popcount(stale_[w]);
    }
  }
  if (measured) {
    ++measured_writes_;
    if (stale_count != 0) {
      ++invalidating_writes_;
      invalidations_ += static_cast<uint64_t>(stale_count);
    }
  }
  return StaleSet(stale_.data(), stale_count);
}

bool Directory::SoleHolder(int host, BlockKey key) const {
  const uint64_t* entry = holders_.Find(key);
  if (entry == nullptr) {
    return false;
  }
  const uint64_t* mask = words_ == 1 ? entry : SlotWords(*entry - 1);
  const size_t host_word = static_cast<size_t>(host) >> 6;
  const uint64_t host_bit = 1ULL << (host & 63);
  for (size_t w = 0; w < words_; ++w) {
    if (mask[w] != (w == host_word ? host_bit : 0)) {
      return false;
    }
  }
  return true;
}

bool Directory::IsCachedBy(int host, BlockKey key) const {
  const uint64_t* entry = holders_.Find(key);
  if (entry == nullptr) {
    return false;
  }
  const uint64_t* mask = words_ == 1 ? entry : SlotWords(*entry - 1);
  return (mask[static_cast<size_t>(host) >> 6] & (1ULL << (host & 63))) != 0;
}

uint64_t Directory::holders(BlockKey key) const {
  FLASHSIM_CHECK(words_ == 1);
  const uint64_t* entry = holders_.Find(key);
  return entry == nullptr ? 0 : *entry;
}

int Directory::holder_count(BlockKey key) const {
  const uint64_t* entry = holders_.Find(key);
  if (entry == nullptr) {
    return 0;
  }
  const uint64_t* mask = words_ == 1 ? entry : SlotWords(*entry - 1);
  int count = 0;
  for (size_t w = 0; w < words_; ++w) {
    count += std::popcount(mask[w]);
  }
  return count;
}

}  // namespace flashsim
