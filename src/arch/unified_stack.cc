#include "src/arch/unified_stack.h"

namespace flashsim {

UnifiedStack::UnifiedStack(const StackConfig& config, RamDevice& ram_dev,
                           FlashDevice& flash_dev, StorageService& remote,
                           BackgroundWriter& writer)
    : CacheStack(config, ram_dev, flash_dev, remote, writer),
      cache_("unified", config.ram_blocks, config.flash_blocks, config.replacement) {
  if (config.admission == AdmissionPolicy::kFlashield && config.flash_blocks > 0) {
    admission_.emplace(config.flash_blocks);
  }
}

bool UnifiedStack::AdmitInsert(BlockKey key) {
  if (!admission_.has_value()) {
    return true;
  }
  if (admission_->ShouldAdmit(key)) {
    return true;
  }
  ++counters_.flash_admission_rejects;
  return false;
}

SimTime UnifiedStack::InsertBlock(SimTime t, BlockKey key, uint32_t* slot_out) {
  std::optional<EvictedBlock> evicted;
  const uint32_t slot = cache_.Insert(key, /*dirty=*/false, &evicted);
  if (slot == kInvalidSlot) {
    // Zero-capacity cache: nothing was inserted.
    *slot_out = slot;
    return t;
  }
  if (evicted.has_value()) {
    if (evicted->dirty) {
      // Synchronous eviction: the victim's data must reach the filer before
      // its buffer is reused.
      ++counters_.sync_flash_evictions;
      ++counters_.filer_writebacks;
      ++counters_.sync_filer_writes;
      NoteShardWrite(evicted->key);
      t = remote_->Write(t, evicted->key);
    }
    flash_dev_->Trim(evicted->key);
    NotifyDropped(evicted->key);
  }
  NotifyCached(key);
  *slot_out = slot;
  return t;
}

SimTime UnifiedStack::Read(SimTime now, BlockKey key, HitLevel* level) {
  SimTime t = now;
  uint32_t slot = cache_.Lookup(key);
  if (slot != kInvalidSlot) {
    cache_.Touch(slot);
    if (cache_.medium_of(slot) == Medium::kRam) {
      ++counters_.ram_hits;
      *level = HitLevel::kRam;
      return ram_dev_->Read(t);
    }
    ++counters_.flash_hits;
    *level = HitLevel::kFlash;
    return flash_dev_->Read(t, key);
  }
  bool fast = true;
  t = remote_->Read(t, key, &fast);
  ++counters_.filer_reads;
  NoteShardRead(key);
  if (AdmitInsert(key)) {
    t = InsertBlock(t, key, &slot);
  }
  if (slot != kInvalidSlot) {
    if (cache_.medium_of(slot) == Medium::kRam) {
      t = ram_dev_->Write(t);
    } else {
      // Flash install is asynchronous on reads; the data has already
      // arrived from the filer, the flash copy trails behind.
      flash_dev_->Write(t, key);
      ++counters_.flash_installs;
    }
  }
  *level = fast ? HitLevel::kFilerFast : HitLevel::kFilerSlow;
  return t;
}

SimTime UnifiedStack::Write(SimTime now, BlockKey key) {
  SimTime t = now;
  uint32_t slot = cache_.Lookup(key);
  if (slot == kInvalidSlot) {
    if (AdmitInsert(key)) {
      t = InsertBlock(t, key, &slot);
    }
    if (slot == kInvalidSlot) {
      // Zero-capacity cache or admission veto: with no buffer to hold the
      // dirty data, the write goes synchronously to the filer.
      ++counters_.filer_writebacks;
      ++counters_.sync_filer_writes;
      NoteShardWrite(key);
      return remote_->Write(t, key);
    }
  } else {
    cache_.Touch(slot);
  }
  const Medium medium = cache_.medium_of(slot);
  if (medium == Medium::kRam) {
    t = ram_dev_->Write(t);
  } else {
    // Writes into flash buffers expose the flash write latency (§7.1: the
    // unified architecture sees ~8/9 of the flash write time on average).
    t = flash_dev_->Write(t, key);
    ++counters_.flash_installs;
  }
  switch (PolicyFor(medium)) {
    case WritebackPolicy::kSync:
      ++counters_.filer_writebacks;
      ++counters_.sync_filer_writes;
      NoteShardWrite(key);
      t = remote_->Write(t, key);
      break;
    case WritebackPolicy::kAsync:
      ++counters_.filer_writebacks;
      NoteShardWrite(key);
      writer_->EnqueueFilerWrite(t, /*then_flash=*/false, key);
      break;
    default:
      cache_.MarkDirty(slot, t);
      break;
  }
  return t;
}

std::optional<SimTime> UnifiedStack::FlushOneOf(SimTime now, Medium medium,
                                                SimTime dirtied_before) {
  const uint32_t slot = cache_.OldestDirty(medium);
  if (slot == kInvalidSlot || cache_.dirtied_at(slot) > dirtied_before) {
    return std::nullopt;
  }
  const BlockKey key = cache_.key_of(slot);
  cache_.MarkClean(slot);
  ++counters_.filer_writebacks;
  ++counters_.sync_filer_writes;
  NoteShardWrite(key);
  return remote_->Write(now, key);
}

std::optional<SimTime> UnifiedStack::FlushOneRamBlock(SimTime now, SimTime dirtied_before) {
  return FlushOneOf(now, Medium::kRam, dirtied_before);
}

std::optional<SimTime> UnifiedStack::FlushOneFlashBlock(SimTime now, SimTime dirtied_before) {
  return FlushOneOf(now, Medium::kFlash, dirtied_before);
}

void UnifiedStack::Invalidate(BlockKey key) {
  if (cache_.Remove(key)) {
    flash_dev_->Trim(key);
    NotifyDropped(key);
  }
}

uint64_t UnifiedStack::RamResident() const {
  uint64_t count = 0;
  cache_.ForEach([&](BlockKey, Medium medium, bool) {
    if (medium == Medium::kRam) {
      ++count;
    }
  });
  return count;
}

uint64_t UnifiedStack::FlashResident() const {
  uint64_t count = 0;
  cache_.ForEach([&](BlockKey, Medium medium, bool) {
    if (medium == Medium::kFlash) {
      ++count;
    }
  });
  return count;
}

}  // namespace flashsim
