#include "src/arch/stack_factory.h"

#include "src/arch/subset_stack.h"
#include "src/arch/unified_stack.h"

namespace flashsim {

const char* HitLevelName(HitLevel level) {
  switch (level) {
    case HitLevel::kRam:
      return "ram";
    case HitLevel::kFlash:
      return "flash";
    case HitLevel::kFilerFast:
      return "filer-fast";
    case HitLevel::kFilerSlow:
      return "filer-slow";
  }
  return "?";
}

const char* ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kNaive:
      return "naive";
    case Architecture::kLookaside:
      return "lookaside";
    case Architecture::kUnified:
      return "unified";
  }
  return "?";
}

std::optional<Architecture> ParseArchitecture(const std::string& name) {
  for (Architecture arch : kAllArchitectures) {
    if (name == ArchitectureName(arch)) {
      return arch;
    }
  }
  return std::nullopt;
}

std::unique_ptr<CacheStack> MakeCacheStack(Architecture arch, const StackConfig& config,
                                           RamDevice& ram_dev, FlashDevice& flash_dev,
                                           StorageService& remote, BackgroundWriter& writer) {
  switch (arch) {
    case Architecture::kNaive:
      return std::make_unique<NaiveStack>(config, ram_dev, flash_dev, remote, writer);
    case Architecture::kLookaside:
      return std::make_unique<LookasideStack>(config, ram_dev, flash_dev, remote, writer);
    case Architecture::kUnified:
      return std::make_unique<UnifiedStack>(config, ram_dev, flash_dev, remote, writer);
  }
  FLASHSIM_CHECK(false);
  return nullptr;
}

}  // namespace flashsim
