// Cache stack interface: one host's RAM + flash caching hierarchy (§3.3).
//
// A stack receives application block reads and writes, charges simulated
// time against the host's devices and network link via timeline resources,
// and returns the application-visible completion time. The three concrete
// stacks implement the paper's architectures:
//
//   Naive     — flash is an independent tier below RAM; RAM is a subset of
//               flash; dirty data moves RAM -> flash -> filer.
//   Lookaside — Mercury-style: dirty data moves RAM -> filer, and the flash
//               copy is refreshed after the filer write; flash never holds
//               dirty data.
//   Unified   — RAM and flash buffers on a single LRU chain; blocks are
//               placed in the least-recently-used buffer regardless of
//               medium and never migrate.
#ifndef FLASHSIM_SRC_ARCH_CACHE_STACK_H_
#define FLASHSIM_SRC_ARCH_CACHE_STACK_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/backend/storage_service.h"
#include "src/cache/lru_cache.h"
#include "src/cache/policy.h"
#include "src/cache/replacement.h"
#include "src/device/background_writer.h"
#include "src/device/flash_device.h"
#include "src/device/ram_device.h"
#include "src/sim/sim_time.h"
#include "src/trace/record.h"

namespace flashsim {

// Where a read was satisfied; the filer levels also record whether its
// read-ahead succeeded ("fast") or it went to disk ("slow").
enum class HitLevel : uint8_t {
  kRam = 0,
  kFlash = 1,
  kFilerFast = 2,
  kFilerSlow = 3,
};

const char* HitLevelName(HitLevel level);

// Certified-class verdict for one access (DESIGN.md §12). The partitioned
// engine defers an access into a parallel batch only when executing it
// touches host-local state alone; ClassifyAccess names which host-local
// branch of Read/Write the access would take, or kUncertifiable when the
// access may touch shared state (filer, background writer, directory
// residency callbacks) or charge an unpredictable path.
enum class AccessVerdict : uint8_t {
  kUncertifiable = 0,
  // Read satisfied from RAM: touch + counter + RAM device charge only.
  kPureRamHit = 1,
  // Read satisfied from flash: touch + counter + flash device charge, plus
  // (subset stacks) a RAM install that provably triggers no writeback and
  // no residency callback. The flash device timeline is host-local and the
  // coordinator flushes batches in rank order, so the charge commutes.
  kFlashHit = 2,
  // Write that lands on a resident copy whose writeback policy marks dirty
  // in place (no write-through): touch + device write + MarkDirty only.
  // The engine additionally requires the consistency directory to show the
  // issuing host as the block's sole holder before certifying (the stack
  // cannot see cross-host state).
  kPrivateWrite = 3,
};

// Side effects of executing a kFlashHit read, reported by ClassifyAccess so
// the engine can keep per-host batch bookkeeping (a RAM install consumes a
// free slot; an evicting install retires the peeked victim).
struct AccessEffects {
  bool ram_install = false;  // the read installs a RAM copy of the block
  bool ram_evict = false;    // ...and evicts the block below to make room
  BlockKey victim_key = 0;   // valid only when ram_evict
};

// Receives block residency transitions for the consistency directory.
class ResidencyListener {
 public:
  virtual ~ResidencyListener() = default;
  virtual void OnCached(BlockKey key) = 0;
  virtual void OnDropped(BlockKey key) = 0;
};

// Counters every stack maintains; all are block-granularity events.
//
// Writeback accounting contract (audited by src/check/audit.h): every block
// writeback increments filer_writebacks exactly once, at issue time, and
// is routed to the filer in exactly one of two ways — a synchronous
// RemoteStore::Write charged to the issuing path (counted here as
// sync_filer_writes) or a BackgroundWriter enqueue (counted by the writer).
// So at any instant, per host:
//
//   filer_writebacks == sync_filer_writes + writer.enqueued()
//
// holds regardless of which path (policy write-through, syncer flush, or
// eviction-triggered writeback) issued the block.
struct StackCounters {
  uint64_t ram_hits = 0;
  uint64_t flash_hits = 0;
  uint64_t filer_reads = 0;
  // Evictions whose writeback blocked the application (the §7.1 convoy).
  uint64_t sync_ram_evictions = 0;
  uint64_t sync_flash_evictions = 0;
  uint64_t flash_installs = 0;     // data blocks written into the flash
  uint64_t filer_writebacks = 0;   // blocks written back to the filer
  // Writebacks issued as synchronous StorageService writes (the rest drain
  // through the background writer).
  uint64_t sync_filer_writes = 0;
  // Flash installs the admission filter vetoed (zero unless
  // AdmissionPolicy::kFlashield is active). Together with flash_installs
  // this is the filter's observable behavior, so the differential oracle
  // holds its mirror filter to both counters.
  uint64_t flash_admission_rejects = 0;

  // Per-shard routing breakdown of filer_reads / filer_writebacks; sized to
  // the backend's shard count when sharding is on, empty on the single-filer
  // path. Excluded from equality: the differential oracle compares counters
  // against a shard-agnostic model, and routing metadata is not behavior.
  std::vector<uint64_t> shard_reads;
  std::vector<uint64_t> shard_writes;

  bool operator==(const StackCounters& o) const {
    return ram_hits == o.ram_hits && flash_hits == o.flash_hits &&
           filer_reads == o.filer_reads && sync_ram_evictions == o.sync_ram_evictions &&
           sync_flash_evictions == o.sync_flash_evictions &&
           flash_installs == o.flash_installs && filer_writebacks == o.filer_writebacks &&
           sync_filer_writes == o.sync_filer_writes &&
           flash_admission_rejects == o.flash_admission_rejects;
  }
};

struct StackConfig {
  uint64_t ram_blocks = 0;
  uint64_t flash_blocks = 0;
  WritebackPolicy ram_policy = WritebackPolicy::kPeriodic1;
  WritebackPolicy flash_policy = WritebackPolicy::kAsync;
  ReplacementPolicy replacement = ReplacementPolicy::kLru;  // §1: LRU throughout
  // DRAM→flash admission for the lookaside/unified flash tier; the naive
  // stack rejects anything but kAll (its writeback path requires RAM⊆flash).
  AdmissionPolicy admission = AdmissionPolicy::kAll;
};

class CacheStack {
 public:
  CacheStack(const StackConfig& config, RamDevice& ram_dev, FlashDevice& flash_dev,
             StorageService& remote, BackgroundWriter& writer)
      : config_(config),
        ram_dev_(&ram_dev),
        flash_dev_(&flash_dev),
        remote_(&remote),
        writer_(&writer) {
    if (remote.num_shards() > 1) {
      counters_.shard_reads.resize(static_cast<size_t>(remote.num_shards()), 0);
      counters_.shard_writes.resize(static_cast<size_t>(remote.num_shards()), 0);
    }
  }
  virtual ~CacheStack() = default;

  CacheStack(const CacheStack&) = delete;
  CacheStack& operator=(const CacheStack&) = delete;

  // Application block read/write starting at `now`; returns the time the
  // application sees completion. Read reports where the block was found.
  virtual SimTime Read(SimTime now, BlockKey key, HitLevel* level) = 0;
  virtual SimTime Write(SimTime now, BlockKey key) = 0;

  // Classifies the access `op` on `key` right now into the certified-class
  // verdict above, without mutating anything. The verdict must be exact: a
  // non-kUncertifiable verdict is a promise that executing the access right
  // now takes precisely the host-local branch the verdict names. For
  // kFlashHit, `effects` (when non-null) reports the install/evict plan so
  // the engine can validate later candidates against pending batch entries.
  // Writes are classified per single block; the engine never certifies
  // multi-block writes.
  virtual AccessVerdict ClassifyAccess(TraceOp op, BlockKey key,
                                       AccessEffects* effects = nullptr) const = 0;

  // Whether a Read of `key` right now would be a pure RAM hit: satisfied
  // entirely from this host's RAM tier, touching only host-local state
  // (recency chain, counters, RAM device timeline) — no eviction, install,
  // directory callback, or filer traffic. Note a pure RAM hit never
  // changes residency, so certification of one read cannot invalidate the
  // certification of another at the same instant.
  bool ReadIsPureRamHit(BlockKey key) const {
    return ClassifyAccess(TraceOp::kRead, key) == AccessVerdict::kPureRamHit;
  }

  // Fused fast-path read (DESIGN.md §13): one hash probe that certifies AND
  // executes. If a Read of `key` at `now` would be a pure RAM hit, performs
  // exactly that Read — intrusive touch, ram_hits counter, RAM device
  // charge — and returns its completion time; otherwise mutates nothing and
  // returns nullopt (the caller falls back to the full Read on the event
  // path). For any key, TryReadFastPath succeeding is equivalent, state and
  // time, to Read reporting HitLevel::kRam; it never succeeds otherwise.
  virtual std::optional<SimTime> TryReadFastPath(SimTime now, BlockKey key) = 0;

  // Flash-tier sibling of TryReadFastPath: if ClassifyAccess would report
  // kFlashHit for a Read of `key` at `now`, performs exactly Read's
  // flash-hit branch — flash touch, flash_hits counter, flash device
  // charge, and (subset stacks) the certified no-writeback RAM install —
  // and returns its completion time; otherwise mutates nothing and returns
  // nullopt. Success is equivalent, state and time, to Read reporting
  // HitLevel::kFlash from a certified state.
  virtual std::optional<SimTime> TryReadFlashFastPath(SimTime now, BlockKey key) = 0;

  // Syncer interface. A periodic writeback policy is a syncer *thread*
  // (§3.5) with one writeback in flight at a time; when it falls behind the
  // dirty-production rate, dirty data accumulates — the paper observes
  // exactly this at very high write rates (§7.6). Each call writes back the
  // oldest dirty block of the tier and returns the completion time the
  // syncer must wait for before its next writeback, or nullopt when the
  // tier is clean — or when its oldest dirty block was dirtied after
  // `dirtied_before` (the kDelayed1 extension flushes only mature blocks).
  // For the unified stack "tier" means buffers of that medium.
  virtual std::optional<SimTime> FlushOneRamBlock(SimTime now,
                                                  SimTime dirtied_before = kSimTimeNever) = 0;
  virtual std::optional<SimTime> FlushOneFlashBlock(SimTime now,
                                                    SimTime dirtied_before = kSimTimeNever) = 0;

  // Drains a tier completely with back-to-back sequential writebacks
  // (test/shutdown convenience); returns the final completion time.
  SimTime FlushAllRam(SimTime now) {
    while (auto done = FlushOneRamBlock(now)) {
      now = *done;
    }
    return now;
  }
  SimTime FlushAllFlash(SimTime now) {
    while (auto done = FlushOneFlashBlock(now)) {
      now = *done;
    }
    return now;
  }

  // Cache-consistency invalidation: drop every copy of `key` (stale data is
  // discarded, not written back). No time is charged — the paper's
  // directory acts instantly with global knowledge (§3.8).
  virtual void Invalidate(BlockKey key) = 0;

  // Whether any copy of `key` is resident (union of RAM and flash).
  virtual bool Holds(BlockKey key) const = 0;

  // Whether a resident copy of `key` is dirty at any tier. Feeds the
  // coherence layer's derived MESI state (coherence.h): a dirty holder is
  // the block's exclusive owner and a remote read must reconcile it.
  virtual bool HoldsDirty(BlockKey key) const = 0;

  // Number of resident blocks at each tier (unified: per medium).
  virtual uint64_t RamResident() const = 0;
  virtual uint64_t FlashResident() const = 0;
  virtual uint64_t DirtyBlocks() const = 0;

  // Structure audit for tests; aborts on violation.
  virtual void CheckInvariants() const = 0;

  // Test-only fault injection (differential-oracle coverage): arms the
  // replacement policies' injected-bug seam on every cache of this stack /
  // inverts the admission filter. No-ops when the policy has no seam or no
  // filter is active. Never called outside tests and check_cli.
  virtual void test_only_break_replacement() {}
  virtual void test_only_break_admission() {}

  // Load-triggered rehashes across this stack's cache indexes; the caches
  // reserve for full capacity, so nonzero means pre-sizing regressed.
  virtual uint64_t IndexRehashes() const = 0;

  void set_residency_listener(ResidencyListener* listener) { listener_ = listener; }

  const StackConfig& config() const { return config_; }
  const StackCounters& counters() const { return counters_; }

 protected:
  void NotifyCached(BlockKey key) {
    if (listener_ != nullptr) {
      listener_->OnCached(key);
    }
  }
  void NotifyDropped(BlockKey key) {
    if (listener_ != nullptr) {
      listener_->OnDropped(key);
    }
  }

  // Attribute a filer read/writeback to its routing shard. No-ops on the
  // single-filer path, where the breakdown vectors stay empty.
  void NoteShardRead(BlockKey key) {
    if (!counters_.shard_reads.empty()) {
      ++counters_.shard_reads[static_cast<size_t>(remote_->ShardOf(key))];
    }
  }
  void NoteShardWrite(BlockKey key) {
    if (!counters_.shard_writes.empty()) {
      ++counters_.shard_writes[static_cast<size_t>(remote_->ShardOf(key))];
    }
  }

  StackConfig config_;
  RamDevice* ram_dev_;
  FlashDevice* flash_dev_;
  StorageService* remote_;
  BackgroundWriter* writer_;
  ResidencyListener* listener_ = nullptr;
  StackCounters counters_;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_ARCH_CACHE_STACK_H_
