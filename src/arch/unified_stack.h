// Unified architecture (§3.3): RAM and flash buffers are managed together
// on a single LRU chain. Data blocks are placed into the least recently
// used buffer, whether that buffer is RAM or flash, and are never migrated;
// no attempt is made to prefer RAM. The effective cache capacity is the sum
// of the two media — the source of its read-latency advantage in Fig 2 —
// while writes pay the latency of whichever medium the block landed in
// (8/9 of blocks land in flash at the baseline 8 GB + 64 GB split).
//
// Dirty blocks write back to the filer under the policy of their medium:
// RAM-buffer blocks follow the RAM writeback policy, flash-buffer blocks
// the flash policy.
#ifndef FLASHSIM_SRC_ARCH_UNIFIED_STACK_H_
#define FLASHSIM_SRC_ARCH_UNIFIED_STACK_H_

#include <optional>

#include "src/arch/cache_stack.h"
#include "src/cache/lru_cache.h"
#include "src/cache/replacement.h"

namespace flashsim {

class UnifiedStack : public CacheStack {
 public:
  UnifiedStack(const StackConfig& config, RamDevice& ram_dev, FlashDevice& flash_dev,
               StorageService& remote, BackgroundWriter& writer);

  SimTime Read(SimTime now, BlockKey key, HitLevel* level) override;
  SimTime Write(SimTime now, BlockKey key) override;
  std::optional<SimTime> FlushOneRamBlock(SimTime now,
                                          SimTime dirtied_before = kSimTimeNever) override;
  std::optional<SimTime> FlushOneFlashBlock(SimTime now,
                                            SimTime dirtied_before = kSimTimeNever) override;
  void Invalidate(BlockKey key) override;
  bool Holds(BlockKey key) const override { return cache_.Lookup(key) != kInvalidSlot; }
  bool HoldsDirty(BlockKey key) const override {
    const uint32_t slot = cache_.Lookup(key);
    return slot != kInvalidSlot && cache_.dirty(slot);
  }
  // Certified-class verdicts (DESIGN.md §12). Any resident hit is
  // host-local on the unified chain — blocks never migrate, so a hit is
  // Touch + counter + the landing medium's device charge, with no install,
  // eviction, or residency callback. Writes certify on the resident +
  // MarkDirty-policy branch for either medium (a flash-medium write charges
  // the host's own flash timeline; the coordinator flushes batches in rank
  // order, so the charge commutes).
  AccessVerdict ClassifyAccess(TraceOp op, BlockKey key,
                               AccessEffects* effects = nullptr) const override {
    (void)effects;  // unified hits never install or evict
    const uint32_t slot = cache_.Lookup(key);
    if (slot == kInvalidSlot) {
      return AccessVerdict::kUncertifiable;
    }
    if (op == TraceOp::kWrite) {
      const WritebackPolicy policy = PolicyFor(cache_.medium_of(slot));
      if (policy == WritebackPolicy::kSync || policy == WritebackPolicy::kAsync) {
        return AccessVerdict::kUncertifiable;
      }
      return AccessVerdict::kPrivateWrite;
    }
    return cache_.medium_of(slot) == Medium::kRam ? AccessVerdict::kPureRamHit
                                                  : AccessVerdict::kFlashHit;
  }
  // One LookupFast probe that certifies and executes. A flash-medium hit
  // mutates nothing (Read would Touch it, so the caller must fall back and
  // re-run the full Read); a RAM-medium hit replays Read's RAM branch —
  // Touch, ram_hits, RAM device charge — exactly.
  std::optional<SimTime> TryReadFastPath(SimTime now, BlockKey key) override {
    const uint32_t slot = cache_.LookupFast(key);
    if (slot == kInvalidSlot || cache_.medium_of(slot) != Medium::kRam) {
      return std::nullopt;
    }
    cache_.Touch(slot);
    ++counters_.ram_hits;
    return ram_dev_->Read(now);
  }
  // Fused flash-medium twin: replays Read's flash branch — Touch,
  // flash_hits, flash device charge — exactly; mutates nothing on a miss or
  // a RAM-medium hit.
  std::optional<SimTime> TryReadFlashFastPath(SimTime now, BlockKey key) override {
    const uint32_t slot = cache_.LookupFast(key);
    if (slot == kInvalidSlot || cache_.medium_of(slot) != Medium::kFlash) {
      return std::nullopt;
    }
    cache_.Touch(slot);
    ++counters_.flash_hits;
    return flash_dev_->Read(now, key);
  }
  uint64_t RamResident() const override;
  uint64_t FlashResident() const override;
  uint64_t DirtyBlocks() const override { return cache_.dirty_count(); }
  void CheckInvariants() const override { cache_.CheckInvariants(); }
  uint64_t IndexRehashes() const override { return cache_.index_rehashes(); }

  const LruBlockCache& cache() const { return cache_; }

  void test_only_break_replacement() override {
    cache_.eviction_policy().set_test_break(true);
  }
  void test_only_break_admission() override {
    if (admission_.has_value()) {
      admission_->test_only_invert();
    }
  }

  bool admission_active() const { return admission_.has_value(); }

 protected:
  // Whether a missed block may be inserted at all. The unified chain places
  // new blocks in the least-recently-used buffer — overwhelmingly a flash
  // buffer at the paper's 8 GB + 64 GB split — so the admission filter
  // gates every miss-path insert rather than predicting the landing medium.
  bool AdmitInsert(BlockKey key);
  WritebackPolicy PolicyFor(Medium medium) const {
    return medium == Medium::kRam ? config_.ram_policy : config_.flash_policy;
  }

  // Inserts `key` into the least recently used buffer; synchronous filer
  // writeback of an evicted dirty block is charged to `t`.
  SimTime InsertBlock(SimTime t, BlockKey key, uint32_t* slot_out);

  // Writes back the oldest dirty block held in a buffer of `medium`, if it
  // was dirtied at or before `dirtied_before`.
  std::optional<SimTime> FlushOneOf(SimTime now, Medium medium, SimTime dirtied_before);

  LruBlockCache cache_;
  // Engaged only under AdmissionPolicy::kFlashield with flash buffers.
  std::optional<FlashAdmissionFilter> admission_;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_ARCH_UNIFIED_STACK_H_
