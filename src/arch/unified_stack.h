// Unified architecture (§3.3): RAM and flash buffers are managed together
// on a single LRU chain. Data blocks are placed into the least recently
// used buffer, whether that buffer is RAM or flash, and are never migrated;
// no attempt is made to prefer RAM. The effective cache capacity is the sum
// of the two media — the source of its read-latency advantage in Fig 2 —
// while writes pay the latency of whichever medium the block landed in
// (8/9 of blocks land in flash at the baseline 8 GB + 64 GB split).
//
// Dirty blocks write back to the filer under the policy of their medium:
// RAM-buffer blocks follow the RAM writeback policy, flash-buffer blocks
// the flash policy.
#ifndef FLASHSIM_SRC_ARCH_UNIFIED_STACK_H_
#define FLASHSIM_SRC_ARCH_UNIFIED_STACK_H_

#include <optional>

#include "src/arch/cache_stack.h"
#include "src/cache/lru_cache.h"
#include "src/cache/replacement.h"

namespace flashsim {

class UnifiedStack : public CacheStack {
 public:
  UnifiedStack(const StackConfig& config, RamDevice& ram_dev, FlashDevice& flash_dev,
               StorageService& remote, BackgroundWriter& writer);

  SimTime Read(SimTime now, BlockKey key, HitLevel* level) override;
  SimTime Write(SimTime now, BlockKey key) override;
  std::optional<SimTime> FlushOneRamBlock(SimTime now,
                                          SimTime dirtied_before = kSimTimeNever) override;
  std::optional<SimTime> FlushOneFlashBlock(SimTime now,
                                            SimTime dirtied_before = kSimTimeNever) override;
  void Invalidate(BlockKey key) override;
  bool Holds(BlockKey key) const override { return cache_.Lookup(key) != kInvalidSlot; }
  bool HoldsDirty(BlockKey key) const override {
    const uint32_t slot = cache_.Lookup(key);
    return slot != kInvalidSlot && cache_.dirty(slot);
  }
  // Only the RAM-medium branch of Read is certified: it touches the chain
  // and the RAM device timeline and returns. (A flash-medium hit is also
  // host-local but shares the flash timeline with syncer flushes; keeping
  // it on the coordinator sidesteps ordering questions for no measurable
  // loss — the batches that matter are RAM-hit storms.)
  bool ReadIsPureRamHit(BlockKey key) const override {
    const uint32_t slot = cache_.Lookup(key);
    return slot != kInvalidSlot && cache_.medium_of(slot) == Medium::kRam;
  }
  // One LookupFast probe that certifies and executes. A flash-medium hit
  // mutates nothing (Read would Touch it, so the caller must fall back and
  // re-run the full Read); a RAM-medium hit replays Read's RAM branch —
  // Touch, ram_hits, RAM device charge — exactly.
  std::optional<SimTime> TryReadFastPath(SimTime now, BlockKey key) override {
    const uint32_t slot = cache_.LookupFast(key);
    if (slot == kInvalidSlot || cache_.medium_of(slot) != Medium::kRam) {
      return std::nullopt;
    }
    cache_.Touch(slot);
    ++counters_.ram_hits;
    return ram_dev_->Read(now);
  }
  uint64_t RamResident() const override;
  uint64_t FlashResident() const override;
  uint64_t DirtyBlocks() const override { return cache_.dirty_count(); }
  void CheckInvariants() const override { cache_.CheckInvariants(); }
  uint64_t IndexRehashes() const override { return cache_.index_rehashes(); }

  const LruBlockCache& cache() const { return cache_; }

  void test_only_break_replacement() override {
    cache_.eviction_policy().set_test_break(true);
  }
  void test_only_break_admission() override {
    if (admission_.has_value()) {
      admission_->test_only_invert();
    }
  }

  bool admission_active() const { return admission_.has_value(); }

 protected:
  // Whether a missed block may be inserted at all. The unified chain places
  // new blocks in the least-recently-used buffer — overwhelmingly a flash
  // buffer at the paper's 8 GB + 64 GB split — so the admission filter
  // gates every miss-path insert rather than predicting the landing medium.
  bool AdmitInsert(BlockKey key);
  WritebackPolicy PolicyFor(Medium medium) const {
    return medium == Medium::kRam ? config_.ram_policy : config_.flash_policy;
  }

  // Inserts `key` into the least recently used buffer; synchronous filer
  // writeback of an evicted dirty block is charged to `t`.
  SimTime InsertBlock(SimTime t, BlockKey key, uint32_t* slot_out);

  // Writes back the oldest dirty block held in a buffer of `medium`, if it
  // was dirtied at or before `dirtied_before`.
  std::optional<SimTime> FlushOneOf(SimTime now, Medium medium, SimTime dirtied_before);

  LruBlockCache cache_;
  // Engaged only under AdmissionPolicy::kFlashield with flash buffers.
  std::optional<FlashAdmissionFilter> admission_;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_ARCH_UNIFIED_STACK_H_
