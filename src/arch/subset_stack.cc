#include "src/arch/subset_stack.h"

namespace flashsim {

SubsetStackBase::SubsetStackBase(const StackConfig& config, RamDevice& ram_dev,
                                 FlashDevice& flash_dev, StorageService& remote,
                                 BackgroundWriter& writer)
    : CacheStack(config, ram_dev, flash_dev, remote, writer),
      ram_("ram", config.ram_blocks, 0, config.replacement),
      flash_("flash", 0, config.flash_blocks, config.replacement) {
  if (config.admission == AdmissionPolicy::kFlashield && config.flash_blocks > 0) {
    admission_.emplace(config.flash_blocks);
  }
}

bool SubsetStackBase::MayInstallInFlash(BlockKey key) {
  if (!admission_.has_value() || flash_.Lookup(key) != kInvalidSlot) {
    return true;
  }
  if (admission_->ShouldAdmit(key)) {
    return true;
  }
  ++counters_.flash_admission_rejects;
  return false;
}

AccessVerdict SubsetStackBase::ClassifyAccess(TraceOp op, BlockKey key,
                                              AccessEffects* effects) const {
  if (op == TraceOp::kWrite) {
    // Certified branch of Write: a RAM-resident hit whose writeback policy
    // marks dirty in place — Touch + ram write + MarkDirty, no
    // write-through, no install, no residency callback.
    if (!HasRam() || ram_.Lookup(key) == kInvalidSlot) {
      return AccessVerdict::kUncertifiable;
    }
    if (config_.ram_policy == WritebackPolicy::kSync ||
        config_.ram_policy == WritebackPolicy::kAsync) {
      return AccessVerdict::kUncertifiable;
    }
    return AccessVerdict::kPrivateWrite;
  }
  if (HasRam() && ram_.Lookup(key) != kInvalidSlot) {
    return AccessVerdict::kPureRamHit;
  }
  if (!HasFlash() || flash_.Lookup(key) == kInvalidSlot) {
    return AccessVerdict::kUncertifiable;
  }
  // Flash hit. With no RAM tier the read is touch + flash charge only.
  if (!HasRam()) {
    return AccessVerdict::kFlashHit;
  }
  // The InstallInRam that follows must provably take its silent path: no
  // dirty-victim writeback, and no residency callback. Without an admission
  // filter the HasFlash install never notifies; with one, it notifies only
  // for RAM-only residents (the key is flash-resident here, so only the
  // victim can trip it).
  if (effects != nullptr) {
    effects->ram_install = true;
  }
  if (ram_.size() < ram_.capacity()) {
    return AccessVerdict::kFlashHit;  // free slot: install without eviction
  }
  const uint32_t victim = ram_.eviction_policy().PeekVictim();
  if (victim == kInvalidSlot || ram_.dirty(victim)) {
    return AccessVerdict::kUncertifiable;
  }
  const BlockKey victim_key = ram_.key_of(victim);
  if (admission_.has_value() && flash_.Lookup(victim_key) == kInvalidSlot) {
    return AccessVerdict::kUncertifiable;  // dropping it fires NotifyDropped
  }
  if (effects != nullptr) {
    effects->ram_evict = true;
    effects->victim_key = victim_key;
  }
  return AccessVerdict::kFlashHit;
}

std::optional<SimTime> SubsetStackBase::TryReadFlashFastPath(SimTime now, BlockKey key) {
  if (ClassifyAccess(TraceOp::kRead, key) != AccessVerdict::kFlashHit) {
    return std::nullopt;
  }
  const uint32_t fslot = flash_.Lookup(key);
  flash_.Touch(fslot);
  ++counters_.flash_hits;
  SimTime t = flash_dev_->Read(now, key);
  if (HasRam()) {
    t = InstallInRam(t, key, nullptr);
  }
  return t;
}

SimTime SubsetStackBase::Read(SimTime now, BlockKey key, HitLevel* level) {
  SimTime t = now;
  if (HasRam()) {
    const uint32_t slot = ram_.Lookup(key);
    if (slot != kInvalidSlot) {
      ram_.Touch(slot);
      ++counters_.ram_hits;
      *level = HitLevel::kRam;
      return ram_dev_->Read(t);
    }
  }
  if (HasFlash()) {
    const uint32_t fslot = flash_.Lookup(key);
    if (fslot != kInvalidSlot) {
      flash_.Touch(fslot);
      ++counters_.flash_hits;
      t = flash_dev_->Read(t, key);
      if (HasRam()) {
        t = InstallInRam(t, key, nullptr);
      }
      *level = HitLevel::kFlash;
      return t;
    }
  }
  // Miss: fetch from the filer.
  bool fast = true;
  t = remote_->Read(t, key, &fast);
  ++counters_.filer_reads;
  NoteShardRead(key);
  if (HasFlash() && MayInstallInFlash(key)) {
    uint32_t fslot = kInvalidSlot;
    t = EnsureFlashSlot(t, key, &fslot);
    // Install the data into the flash asynchronously: the application gets
    // the data as soon as it arrives; the flash write is hidden (§7.1) but
    // occupies the device.
    flash_dev_->Write(t, key);
    ++counters_.flash_installs;
  }
  if (HasRam()) {
    t = InstallInRam(t, key, nullptr);
  }
  *level = fast ? HitLevel::kFilerFast : HitLevel::kFilerSlow;
  return t;
}

SimTime SubsetStackBase::Write(SimTime now, BlockKey key) {
  SimTime t = now;
  if (!HasRam()) {
    if (!HasFlash()) {
      // No caching at all: synchronous filer write.
      ++counters_.filer_writebacks;
      ++counters_.sync_filer_writes;
      NoteShardWrite(key);
      return remote_->Write(t, key);
    }
    return WriteWithoutRam(t, key);
  }
  uint32_t slot = ram_.Lookup(key);
  if (slot == kInvalidSlot) {
    if (HasFlash() && MayInstallInFlash(key)) {
      // Subset invariant: the block enters the flash index before RAM.
      uint32_t fslot = kInvalidSlot;
      t = EnsureFlashSlot(t, key, &fslot);
    }
    t = InstallInRam(t, key, &slot);
  } else {
    ram_.Touch(slot);
    t = ram_dev_->Write(t);
  }
  switch (config_.ram_policy) {
    case WritebackPolicy::kSync:
      // Blocks the application until the tier below acknowledges.
      t = WritebackFromRam(t, key, /*requester_waits=*/true);
      break;
    case WritebackPolicy::kAsync:
      // Issued immediately; the application does not wait.
      WritebackFromRam(t, key, /*requester_waits=*/false);
      break;
    default:
      ram_.MarkDirty(slot, t);
      break;
  }
  return t;
}

SimTime SubsetStackBase::EnsureFlashSlot(SimTime t, BlockKey key, uint32_t* slot_out) {
  FLASHSIM_DCHECK(HasFlash());
  uint32_t slot = flash_.Lookup(key);
  if (slot != kInvalidSlot) {
    flash_.Touch(slot);
    *slot_out = slot;
    return t;
  }
  std::optional<EvictedBlock> evicted;
  slot = flash_.Insert(key, /*dirty=*/false, &evicted);
  if (evicted.has_value()) {
    // Subset maintenance: the evicted block leaves RAM too. If either copy
    // was dirty, its newest data must reach the filer before the buffer is
    // reused — a synchronous eviction charged to the requester.
    bool ram_copy_dirty = false;
    if (HasRam() && !test_break_subset_eviction_) {
      EvictedBlock ram_copy;
      if (ram_.Remove(evicted->key, &ram_copy)) {
        ram_copy_dirty = ram_copy.dirty;
      }
    }
    if (evicted->dirty || ram_copy_dirty) {
      ++counters_.sync_flash_evictions;
      ++counters_.filer_writebacks;
      ++counters_.sync_filer_writes;
      NoteShardWrite(evicted->key);
      t = remote_->Write(t, evicted->key);
    }
    flash_dev_->Trim(evicted->key);
    NotifyDropped(evicted->key);
  }
  NotifyCached(key);
  *slot_out = slot;
  return t;
}

SimTime SubsetStackBase::InstallInRam(SimTime t, BlockKey key, uint32_t* slot_out) {
  FLASHSIM_DCHECK(HasRam());
  std::optional<EvictedBlock> evicted;
  const uint32_t slot = ram_.Insert(key, /*dirty=*/false, &evicted);
  if (evicted.has_value() && evicted->dirty) {
    // Synchronous RAM eviction: the dirty victim's data must move down
    // before its buffer is reused.
    ++counters_.sync_ram_evictions;
    t = WritebackFromRam(t, evicted->key, /*requester_waits=*/true);
  }
  if (!HasFlash()) {
    // RAM is the union cache; track residency here.
    if (evicted.has_value()) {
      NotifyDropped(evicted->key);
    }
    NotifyCached(key);
  } else if (admission_.has_value()) {
    // Admission filtering leaves RAM-only residents; the directory must
    // learn about them here (flash-resident blocks are registered by
    // EnsureFlashSlot).
    if (evicted.has_value() && flash_.Lookup(evicted->key) == kInvalidSlot) {
      NotifyDropped(evicted->key);
    }
    if (flash_.Lookup(key) == kInvalidSlot) {
      NotifyCached(key);
    }
  }
  if (slot_out != nullptr) {
    *slot_out = slot;
  }
  return ram_dev_->Write(t);
}

SimTime SubsetStackBase::WritebackFromRam(SimTime t, BlockKey key, bool requester_waits) {
  if (!HasFlash()) {
    ++counters_.filer_writebacks;
    NoteShardWrite(key);
    if (requester_waits) {
      ++counters_.sync_filer_writes;
      return remote_->Write(t, key);
    }
    writer_->EnqueueFilerWrite(t, /*then_flash=*/false, key);
    return t;
  }
  return WritebackFromRamToBelow(t, key, requester_waits);
}

std::optional<SimTime> SubsetStackBase::FlushOneRamBlock(SimTime now, SimTime dirtied_before) {
  const uint32_t slot = ram_.OldestDirty(Medium::kRam);
  if (slot == kInvalidSlot || ram_.dirtied_at(slot) > dirtied_before) {
    return std::nullopt;
  }
  const BlockKey key = ram_.key_of(slot);
  ram_.MarkClean(slot);
  // The syncer thread paces itself on the writeback it just issued.
  return WritebackFromRam(now, key, /*requester_waits=*/true);
}

void SubsetStackBase::Invalidate(BlockKey key) {
  bool held = false;
  if (HasRam()) {
    held = ram_.Remove(key) || held;
  }
  if (HasFlash()) {
    if (flash_.Remove(key)) {
      flash_dev_->Trim(key);
      held = true;
    }
  }
  if (held) {
    NotifyDropped(key);
  }
}

bool SubsetStackBase::Holds(BlockKey key) const {
  if (HasFlash()) {
    if (flash_.Lookup(key) != kInvalidSlot) {
      return true;
    }
    // Only an admission filter can leave a block in RAM but not flash.
    return admission_.has_value() && ram_.Lookup(key) != kInvalidSlot;
  }
  return ram_.Lookup(key) != kInvalidSlot;
}

void SubsetStackBase::CheckInvariants() const {
  ram_.CheckInvariants();
  flash_.CheckInvariants();
  if (HasFlash() && !admission_.has_value()) {
    // RAM must be a subset of flash (§3.3). An active admission filter
    // deliberately relaxes this: vetoed blocks live in RAM only.
    ram_.ForEach([&](BlockKey key, Medium, bool) {
      FLASHSIM_CHECK(flash_.Lookup(key) != kInvalidSlot);
    });
  }
}

// ----------------------------------------------------------------------------
// NaiveStack

SimTime NaiveStack::ApplyFlashArrival(SimTime t, BlockKey key, uint32_t slot,
                                      bool requester_waits) {
  switch (config_.flash_policy) {
    case WritebackPolicy::kSync:
      ++counters_.filer_writebacks;
      NoteShardWrite(key);
      if (requester_waits) {
        ++counters_.sync_filer_writes;
        return remote_->Write(t, key);
      }
      writer_->EnqueueFilerWrite(t, /*then_flash=*/false, key);
      return t;
    case WritebackPolicy::kAsync:
      ++counters_.filer_writebacks;
      NoteShardWrite(key);
      writer_->EnqueueFilerWrite(t, /*then_flash=*/false, key);
      return t;
    default:
      flash_.MarkDirty(slot, t);
      return t;
  }
}

SimTime NaiveStack::WritebackFromRamToBelow(SimTime t, BlockKey key, bool requester_waits) {
  // Subset invariant guarantees the flash slot exists.
  const uint32_t slot = flash_.Lookup(key);
  FLASHSIM_CHECK(slot != kInvalidSlot);
  const SimTime tw = flash_dev_->Write(t, key);
  ++counters_.flash_installs;
  return ApplyFlashArrival(tw, key, slot, requester_waits);
}

SimTime NaiveStack::WriteWithoutRam(SimTime t, BlockKey key) {
  uint32_t slot = kInvalidSlot;
  t = EnsureFlashSlot(t, key, &slot);
  // With no RAM buffer the application pays the flash write itself.
  t = flash_dev_->Write(t, key);
  ++counters_.flash_installs;
  return ApplyFlashArrival(t, key, slot, /*requester_waits=*/true);
}

std::optional<SimTime> NaiveStack::FlushOneFlashBlock(SimTime now, SimTime dirtied_before) {
  const uint32_t slot = flash_.OldestDirty(Medium::kFlash);
  if (slot == kInvalidSlot || flash_.dirtied_at(slot) > dirtied_before) {
    return std::nullopt;
  }
  const BlockKey key = flash_.key_of(slot);
  flash_.MarkClean(slot);
  ++counters_.filer_writebacks;
  ++counters_.sync_filer_writes;
  NoteShardWrite(key);
  return remote_->Write(now, key);
}

// ----------------------------------------------------------------------------
// LookasideStack

SimTime LookasideStack::WritebackFromRamToBelow(SimTime t, BlockKey key, bool requester_waits) {
  // Writes go directly from RAM to the filer; the flash copy is refreshed
  // only after the filer write completes, so flash never holds dirty data.
  ++counters_.filer_writebacks;
  NoteShardWrite(key);
  if (!requester_waits) {
    // Without admission filtering RAM ⊆ flash guarantees the flash copy
    // exists, so the refresh is unconditional; a filter can leave the block
    // RAM-only, in which case there is nothing in flash to refresh.
    const bool refresh = !admission_.has_value() || flash_.Lookup(key) != kInvalidSlot;
    writer_->EnqueueFilerWrite(t, /*then_flash=*/refresh, key);
    if (refresh) {
      ++counters_.flash_installs;
    }
    return t;
  }
  ++counters_.sync_filer_writes;
  const SimTime tw = remote_->Write(t, key);
  const uint32_t slot = flash_.Lookup(key);
  if (slot != kInvalidSlot) {
    flash_dev_->Write(tw, key);
    ++counters_.flash_installs;
  }
  return tw;
}

SimTime LookasideStack::WriteWithoutRam(SimTime t, BlockKey key) {
  ++counters_.filer_writebacks;
  ++counters_.sync_filer_writes;
  NoteShardWrite(key);
  t = remote_->Write(t, key);
  if (!MayInstallInFlash(key)) {
    return t;
  }
  uint32_t slot = kInvalidSlot;
  const SimTime after_evictions = EnsureFlashSlot(t, key, &slot);
  flash_dev_->Write(after_evictions, key);
  ++counters_.flash_installs;
  return after_evictions;
}

std::optional<SimTime> LookasideStack::FlushOneFlashBlock(SimTime, SimTime) {
  FLASHSIM_DCHECK(flash_.dirty_count() == 0);
  return std::nullopt;
}

}  // namespace flashsim
