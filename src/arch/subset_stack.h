// Shared machinery for the two subset architectures (naive and lookaside).
//
// In both, the flash cache is an independent layer below the RAM cache and
// the RAM cache's contents are always a subset of the flash cache's (§3.3),
// so no integrated management is needed. They differ only in where dirty
// RAM data goes: naive writes it down into the flash tier (which then owns
// writing it to the filer), lookaside writes it directly to the filer and
// only refreshes the flash copy afterwards, so flash never holds dirty data.
//
// Degenerate capacities are supported so the same stacks produce the
// paper's baselines: flash_blocks == 0 gives the no-flash system (RAM over
// filer), ram_blocks == 0 gives the no-RAM configurations of Figs 6 and 7.
#ifndef FLASHSIM_SRC_ARCH_SUBSET_STACK_H_
#define FLASHSIM_SRC_ARCH_SUBSET_STACK_H_

#include <optional>

#include "src/arch/cache_stack.h"
#include "src/cache/lru_cache.h"
#include "src/cache/replacement.h"
#include "src/util/assert.h"

namespace flashsim {

class SubsetStackBase : public CacheStack {
 public:
  SubsetStackBase(const StackConfig& config, RamDevice& ram_dev, FlashDevice& flash_dev,
                  StorageService& remote, BackgroundWriter& writer);

  SimTime Read(SimTime now, BlockKey key, HitLevel* level) override;
  SimTime Write(SimTime now, BlockKey key) override;
  std::optional<SimTime> FlushOneRamBlock(SimTime now,
                                          SimTime dirtied_before = kSimTimeNever) override;
  void Invalidate(BlockKey key) override;
  // Union residency. Without admission filtering RAM ⊆ flash makes the
  // flash index authoritative; with a filter active, RAM-only residents
  // exist and the union is genuine.
  bool Holds(BlockKey key) const override;
  bool HoldsDirty(BlockKey key) const override {
    const uint32_t ram_slot = ram_.Lookup(key);
    if (ram_slot != kInvalidSlot && ram_.dirty(ram_slot)) {
      return true;
    }
    const uint32_t flash_slot = flash_.Lookup(key);
    return flash_slot != kInvalidSlot && flash_.dirty(flash_slot);
  }
  // Certified-class verdicts (DESIGN.md §12). A RAM-resident block reads
  // via Touch + RamDevice::Read only (kPureRamHit). A flash-resident block
  // reads via flash touch + flash charge + a RAM install; the install is
  // certified only when it provably triggers no writeback (clean or absent
  // victim) and no residency callback (victim flash-resident under an
  // admission filter). A write certifies only on the Touch + ram write +
  // MarkDirty branch.
  AccessVerdict ClassifyAccess(TraceOp op, BlockKey key,
                               AccessEffects* effects = nullptr) const override;
  // One LookupFast probe replaces Read's certify-then-probe pair; the body
  // is Read's RAM-hit branch verbatim, so state and time match exactly.
  std::optional<SimTime> TryReadFastPath(SimTime now, BlockKey key) override {
    if (!HasRam()) {
      return std::nullopt;
    }
    const uint32_t slot = ram_.LookupFast(key);
    if (slot == kInvalidSlot) {
      return std::nullopt;
    }
    ram_.Touch(slot);
    ++counters_.ram_hits;
    return ram_dev_->Read(now);
  }
  // Certify-then-execute twin for the flash tier: the body is Read's
  // flash-hit branch verbatim (InstallInRam included), so state and time
  // match the event round trip exactly whenever ClassifyAccess reports
  // kFlashHit.
  std::optional<SimTime> TryReadFlashFastPath(SimTime now, BlockKey key) override;
  uint64_t RamResident() const override { return ram_.size(); }
  uint64_t FlashResident() const override { return flash_.size(); }
  uint64_t DirtyBlocks() const override { return ram_.dirty_count() + flash_.dirty_count(); }
  void CheckInvariants() const override;
  uint64_t IndexRehashes() const override {
    return ram_.index_rehashes() + flash_.index_rehashes();
  }

  const LruBlockCache& ram_cache() const { return ram_; }
  const LruBlockCache& flash_cache() const { return flash_; }

  // Test-only fault injection: when set, EnsureFlashSlot stops dropping the
  // evicted flash block's RAM copy, deliberately breaking the RAM-subset
  // invariant. Exists so the differential oracle and the invariant auditor
  // can demonstrate they catch a real single-branch eviction bug
  // (tests/differential_test.cc, tests/audit_test.cc). Never set outside
  // tests.
  void test_only_break_subset_eviction() { test_break_subset_eviction_ = true; }

  void test_only_break_replacement() override {
    ram_.eviction_policy().set_test_break(true);
    flash_.eviction_policy().set_test_break(true);
  }
  void test_only_break_admission() override {
    if (admission_.has_value()) {
      admission_->test_only_invert();
    }
  }

  bool admission_active() const { return admission_.has_value(); }

 protected:
  bool HasRam() const { return ram_.capacity() > 0; }
  bool HasFlash() const { return flash_.capacity() > 0; }

  // Whether `key` may occupy a flash slot right now: always when no
  // admission filter is active or the block is already flash-resident;
  // otherwise the filter decides (and a veto is counted).
  bool MayInstallInFlash(BlockKey key);

  // Ensures `key` occupies a flash slot (allocating, evicting the flash LRU
  // block if full). Evicted dirty data — or an evicted block whose RAM copy
  // was dirty — is synchronously written to the filer, charged to `t`
  // (these are the synchronous evictions that convoy under policy "n").
  // Maintains the RAM-subset invariant by dropping the evicted block's RAM
  // copy. Requires HasFlash().
  SimTime EnsureFlashSlot(SimTime t, BlockKey key, uint32_t* slot_out);

  // Inserts `key` into RAM (must be absent) and charges the RAM copy cost.
  // A dirty evicted block is synchronously written to the tier below RAM.
  // Requires HasRam().
  SimTime InstallInRam(SimTime t, BlockKey key, uint32_t* slot_out);

  // Writes the current data of RAM-resident (or just-evicted) block `key`
  // to the tier below RAM, applying the architecture's rules. When
  // `requester_waits` the returned completion blocks the caller (sync
  // policy, dirty eviction, syncer pacing); otherwise the writeback drains
  // through the background writer and the caller is not delayed. With no
  // flash tier the target is the filer in both architectures.
  SimTime WritebackFromRam(SimTime t, BlockKey key, bool requester_waits);

  // Architecture-specific: writeback target when a flash tier exists.
  virtual SimTime WritebackFromRamToBelow(SimTime t, BlockKey key, bool requester_waits) = 0;

  // Architecture-specific: an application write when ram_blocks == 0.
  virtual SimTime WriteWithoutRam(SimTime t, BlockKey key) = 0;

  LruBlockCache ram_;
  LruBlockCache flash_;
  // Engaged only under AdmissionPolicy::kFlashield with a flash tier.
  std::optional<FlashAdmissionFilter> admission_;

 private:
  bool test_break_subset_eviction_ = false;
};

// Naive architecture: flash is a plain lower tier. Dirty RAM data is
// written into the flash; the flash writeback policy then governs when it
// reaches the filer.
class NaiveStack : public SubsetStackBase {
 public:
  // Naive cannot run admission-filtered: WritebackFromRamToBelow requires
  // every RAM block to have a flash slot (RAM ⊆ flash), which a DRAM→flash
  // filter deliberately breaks. SimConfig::Validate rejects the combination
  // up front; this check guards direct constructions.
  NaiveStack(const StackConfig& config, RamDevice& ram_dev, FlashDevice& flash_dev,
             StorageService& remote, BackgroundWriter& writer)
      : SubsetStackBase(config, ram_dev, flash_dev, remote, writer) {
    FLASHSIM_CHECK(config.admission == AdmissionPolicy::kAll);
  }

  std::optional<SimTime> FlushOneFlashBlock(SimTime now,
                                            SimTime dirtied_before = kSimTimeNever) override;

 protected:
  SimTime WritebackFromRamToBelow(SimTime t, BlockKey key, bool requester_waits) override;
  SimTime WriteWithoutRam(SimTime t, BlockKey key) override;

 private:
  // Dirty data for `key` has just landed in flash slot `slot` at time `t`;
  // applies the flash writeback policy. Synchronous write-through blocks
  // the requester only when one is waiting; otherwise it drains through the
  // background writer like asynchronous write-through.
  SimTime ApplyFlashArrival(SimTime t, BlockKey key, uint32_t slot, bool requester_waits);
};

// Lookaside architecture (Mercury, §2): writes go RAM -> filer; the flash
// copy is updated after the filer write completes and is never dirty, so
// applications see persistence guarantees identical to a flash-less system.
class LookasideStack : public SubsetStackBase {
 public:
  using SubsetStackBase::SubsetStackBase;

  // Flash never holds dirty data; the flash syncer has nothing to do.
  std::optional<SimTime> FlushOneFlashBlock(SimTime now,
                                            SimTime dirtied_before = kSimTimeNever) override;

 protected:
  SimTime WritebackFromRamToBelow(SimTime t, BlockKey key, bool requester_waits) override;
  SimTime WriteWithoutRam(SimTime t, BlockKey key) override;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_ARCH_SUBSET_STACK_H_
