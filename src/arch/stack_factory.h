// Architecture selection and construction.
#ifndef FLASHSIM_SRC_ARCH_STACK_FACTORY_H_
#define FLASHSIM_SRC_ARCH_STACK_FACTORY_H_

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "src/arch/cache_stack.h"

namespace flashsim {

enum class Architecture : uint8_t {
  kNaive = 0,
  kLookaside = 1,
  kUnified = 2,
};

constexpr std::array<Architecture, 3> kAllArchitectures = {
    Architecture::kNaive, Architecture::kLookaside, Architecture::kUnified};

const char* ArchitectureName(Architecture arch);
std::optional<Architecture> ParseArchitecture(const std::string& name);

std::unique_ptr<CacheStack> MakeCacheStack(Architecture arch, const StackConfig& config,
                                           RamDevice& ram_dev, FlashDevice& flash_dev,
                                           StorageService& remote, BackgroundWriter& writer);

}  // namespace flashsim

#endif  // FLASHSIM_SRC_ARCH_STACK_FACTORY_H_
