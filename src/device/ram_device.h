// RAM buffer-cache access model: a fixed per-block copy cost.
//
// RAM bandwidth (~10 GB/s) is far above any workload here, so the RAM
// "device" is not a contended timeline; each access simply costs
// ram_access_ns on the requesting thread (§7 chose 400 ns per 4 KB block).
#ifndef FLASHSIM_SRC_DEVICE_RAM_DEVICE_H_
#define FLASHSIM_SRC_DEVICE_RAM_DEVICE_H_

#include "src/device/timing.h"
#include "src/obs/telemetry.h"
#include "src/sim/sim_time.h"

namespace flashsim {

class RamDevice {
 public:
  explicit RamDevice(const TimingModel& timing) : timing_(&timing) {}

  SimTime Read(SimTime now) {
    ++accesses_;
    const SimTime done = now + timing_->ram_access_ns;
    if (probe_ != nullptr) {
      probe_->Record(now, now, done);
    }
    return done;
  }
  SimTime Write(SimTime now) {
    ++accesses_;
    const SimTime done = now + timing_->ram_access_ns;
    if (probe_ != nullptr) {
      probe_->Record(now, now, done);
    }
    return done;
  }

  // Telemetry service point (null = off; not owned). RAM is uncontended, so
  // one probe covers both directions.
  void set_probe(obs::DeviceProbe* probe) { probe_ = probe; }

  uint64_t accesses() const { return accesses_; }
  void Reset() { accesses_ = 0; }

 private:
  const TimingModel* timing_;
  obs::DeviceProbe* probe_ = nullptr;
  uint64_t accesses_ = 0;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_DEVICE_RAM_DEVICE_H_
