// Synthetic consumer-SSD latency profile (substitute for §6.2 / Fig 1).
//
// The paper bought two consumer SSDs and replayed simulator I/O logs to
// check that single average latencies are a sound model. We cannot measure
// hardware here, so this model synthesizes a device with the three
// behaviors the paper observed:
//
//   1. High short-term latency variance that averages out over 10k-100k
//      block groups (lognormal multiplicative noise).
//   2. A single stable average write latency from beginning to end, across
//      all workloads (write-path caching inside the device).
//   3. Read latency that fluctuates and degrades as the device fills and as
//      cumulative write volume grows (a weak monotone relationship).
//
// bench/fig01_ssd_latency replays a cache-shaped workload through this model
// and prints 10k-I/O group averages, reproducing the shape of Fig 1.
#ifndef FLASHSIM_SRC_DEVICE_SSD_PROFILE_H_
#define FLASHSIM_SRC_DEVICE_SSD_PROFILE_H_

#include <cstdint>

#include "src/device/timing.h"
#include "src/sim/sim_time.h"
#include "src/util/rng.h"

namespace flashsim {

struct SsdProfileParams {
  uint64_t capacity_blocks = 0;       // device size; reads degrade as it fills
  SimDuration base_read_ns = 88'000;  // latency at an empty, fresh device
  SimDuration base_write_ns = 21'000;
  double read_noise_sigma = 0.45;   // lognormal sigma of per-I/O read noise
  double write_noise_sigma = 0.30;  // writes are noisy too, but mean-stable
  double fill_read_penalty = 0.55;  // max fractional read slowdown when full
  double write_pressure_penalty = 0.25;  // read slowdown per (writes/capacity)
  double write_pressure_cap = 1.0;       // cap on the write-pressure term
};

class SsdProfile {
 public:
  // kLegacy (the historical behavior, default) draws noise from one
  // sequential stream seeded by rng_seed; kSubstream keys every draw by
  // (rng_seed, draw counter) via FlashDrawSeed, so a profile's Nth draw is
  // a pure function of (seed, N) regardless of interleaving with other
  // profiles.
  SsdProfile(const SsdProfileParams& params, uint64_t rng_seed,
             FlashRngMode rng_mode = FlashRngMode::kLegacy)
      : params_(params), rng_(rng_seed), stream_seed_(rng_seed), rng_mode_(rng_mode) {}

  // Returns per-I/O latency; advances internal device state.
  SimDuration ReadLatency();
  SimDuration WriteLatency();

  // Marks a block resident (fills the device); idempotent callers should
  // only invoke on first-touch writes.
  void NoteFill() {
    if (filled_blocks_ < params_.capacity_blocks) {
      ++filled_blocks_;
    }
  }

  double FillFraction() const;
  uint64_t total_reads() const { return total_reads_; }
  uint64_t total_writes() const { return total_writes_; }

 private:
  double LognormalNoise(double sigma);

  SsdProfileParams params_;
  Rng rng_;                  // kLegacy: sequential stream
  uint64_t stream_seed_;     // kSubstream: per-draw key base
  uint64_t draw_counter_ = 0;
  FlashRngMode rng_mode_;
  uint64_t filled_blocks_ = 0;
  uint64_t total_reads_ = 0;
  uint64_t total_writes_ = 0;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_DEVICE_SSD_PROFILE_H_
