// Shared file server ("filer") model.
//
// The paper deliberately does not model the filer's internals (§5): reads
// are "fast" (its cache/read-ahead hit) with probability
// filer_fast_read_rate and "slow" otherwise; writes land in nonvolatile
// buffer memory and are always fast. The filer serves requests with bounded
// concurrency; the network segments, not the filer, are the intended
// contention point.
#ifndef FLASHSIM_SRC_DEVICE_FILER_H_
#define FLASHSIM_SRC_DEVICE_FILER_H_

#include <cstdint>

#include "src/device/timing.h"
#include "src/obs/telemetry.h"
#include "src/sim/resource.h"
#include "src/sim/sim_time.h"
#include "src/util/rng.h"

namespace flashsim {

class Filer {
 public:
  Filer(const TimingModel& timing, uint64_t rng_seed)
      : timing_(&timing), rng_(rng_seed), servers_("filer", timing.filer_concurrency) {}

  // Services one block read; sets *was_fast and returns completion time.
  SimTime Read(SimTime now, bool* was_fast) {
    const bool fast = rng_.NextBool(timing_->filer_fast_read_rate);
    if (was_fast != nullptr) {
      *was_fast = fast;
    }
    fast ? ++fast_reads_ : ++slow_reads_;
    const SimDuration service =
        fast ? timing_->filer_fast_read_ns : timing_->filer_slow_read_ns;
    const SimTime done = servers_.Acquire(now, service);
    if (read_probe_ != nullptr) {
      read_probe_->Record(now, done - service, done);
    }
    return done;
  }

  // Services one block write (buffered, always fast); returns completion.
  SimTime Write(SimTime now) {
    ++writes_;
    const SimTime done = servers_.Acquire(now, timing_->filer_write_ns);
    if (write_probe_ != nullptr) {
      write_probe_->Record(now, done - timing_->filer_write_ns, done);
    }
    return done;
  }

  // Services one coherence control message (directory lookup, invalidation
  // report, reconciled dirty flush; DESIGN.md §15). Occupies the same
  // server pool as data — protocol traffic queues behind reads and writes —
  // but draws no RNG (so enabling a protocol never perturbs the fast/slow
  // read stream) and counts separately from data reads/writes (so the
  // auditor's conservation identities are untouched).
  SimTime ServeControl(SimTime now, SimDuration service) {
    ++control_messages_;
    const SimTime done = servers_.Acquire(now, service);
    if (ctrl_probe_ != nullptr) {
      ctrl_probe_->Record(now, done - service, done);
    }
    return done;
  }

  // Telemetry service points (null = off; not owned). The filer is shared
  // across hosts, so these probes aggregate all hosts' traffic.
  void set_read_probe(obs::DeviceProbe* probe) { read_probe_ = probe; }
  void set_write_probe(obs::DeviceProbe* probe) { write_probe_ = probe; }
  void set_ctrl_probe(obs::DeviceProbe* probe) { ctrl_probe_ = probe; }

  uint64_t fast_reads() const { return fast_reads_; }
  uint64_t slow_reads() const { return slow_reads_; }
  uint64_t reads() const { return fast_reads_ + slow_reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t control_messages() const { return control_messages_; }
  SimDuration busy_time() const { return servers_.busy_time(); }
  SimDuration wait_time() const { return servers_.wait_time(); }
  // Requests that queued behind a full server pool, and the worst such
  // wait; per-shard saturation depth for the sharded backend's metrics.
  uint64_t queued_requests() const { return servers_.queued_requests(); }
  SimDuration max_wait() const { return servers_.max_wait(); }

  void Reset() {
    servers_.Reset();
    fast_reads_ = 0;
    slow_reads_ = 0;
    writes_ = 0;
    control_messages_ = 0;
  }

 private:
  const TimingModel* timing_;
  Rng rng_;
  MultiResource servers_;
  obs::DeviceProbe* read_probe_ = nullptr;
  obs::DeviceProbe* write_probe_ = nullptr;
  obs::DeviceProbe* ctrl_probe_ = nullptr;
  uint64_t fast_reads_ = 0;
  uint64_t slow_reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t control_messages_ = 0;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_DEVICE_FILER_H_
