#include "src/device/background_writer.h"

#include <algorithm>

#include "src/util/assert.h"

namespace flashsim {

BackgroundWriter::BackgroundWriter(EventQueue& queue, StorageService& remote,
                                   FlashDevice* flash, int window)
    : queue_(&queue), remote_(&remote), flash_(flash), window_(window) {
  FLASHSIM_CHECK(window >= 1);
}

void BackgroundWriter::EnqueueFilerWrite(SimTime now, bool then_flash, BlockKey key) {
  pending_.push_back(Pending{then_flash, key});
  ++enqueued_;
  max_pending_ = std::max(max_pending_, pending());
  Pump(now);
}

void BackgroundWriter::HandleEvent(SimTime now, uint32_t /*code*/, uint64_t /*arg*/) {
  --active_;
  ++completed_;
  Pump(now);
}

void BackgroundWriter::Pump(SimTime now) {
  while (active_ < window_ && !pending_.empty()) {
    const Pending item = pending_.front();
    pending_.pop_front();
    ++active_;
    const SimTime done = remote_->Write(now, item.key);
    if (item.then_flash && flash_ != nullptr) {
      flash_->Write(done, item.key);
    }
    queue_->ScheduleEvent(done, this, /*code=*/0);
  }
}

}  // namespace flashsim
