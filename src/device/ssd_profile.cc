#include "src/device/ssd_profile.h"

#include <algorithm>
#include <cmath>

#include "src/util/distributions.h"

namespace flashsim {

double SsdProfile::FillFraction() const {
  if (params_.capacity_blocks == 0) {
    return 0.0;
  }
  return static_cast<double>(filled_blocks_) / static_cast<double>(params_.capacity_blocks);
}

double SsdProfile::LognormalNoise(double sigma) {
  // Mean-one lognormal: exp(N(-sigma^2/2, sigma^2)) has expectation 1, so the
  // noise scales variance without shifting the average latency.
  double z;
  if (rng_mode_ == FlashRngMode::kSubstream) {
    Rng draw(FlashDrawSeed(stream_seed_, draw_counter_++));
    z = SampleStandardNormal(draw);
  } else {
    z = SampleStandardNormal(rng_);
  }
  return std::exp(sigma * z - 0.5 * sigma * sigma);
}

SimDuration SsdProfile::ReadLatency() {
  ++total_reads_;
  const double fill_term = params_.fill_read_penalty * FillFraction();
  double pressure = 0.0;
  if (params_.capacity_blocks > 0) {
    pressure = static_cast<double>(total_writes_) / static_cast<double>(params_.capacity_blocks);
    pressure = std::min(pressure, params_.write_pressure_cap);
  }
  const double mean_scale = 1.0 + fill_term + params_.write_pressure_penalty * pressure;
  const double latency = static_cast<double>(params_.base_read_ns) * mean_scale *
                         LognormalNoise(params_.read_noise_sigma);
  return static_cast<SimDuration>(latency);
}

SimDuration SsdProfile::WriteLatency() {
  ++total_writes_;
  // Key §6.2 finding: the average write latency is constant for the life of
  // the device, across all workloads; only the variance shows.
  const double latency =
      static_cast<double>(params_.base_write_ns) * LognormalNoise(params_.write_noise_sigma);
  return static_cast<SimDuration>(latency);
}

}  // namespace flashsim
