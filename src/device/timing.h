// Timing model parameters (paper Table 1).
//
// All values are per 4 KB block unless noted. The OCR of the paper prints
// these in "ms"; the figure axes and derived results (e.g. the ~900 us
// no-flash latency floor = 0.9 * ~141 us + 0.1 * ~8 ms) establish that the
// units are microseconds; we store nanoseconds.
#ifndef FLASHSIM_SRC_DEVICE_TIMING_H_
#define FLASHSIM_SRC_DEVICE_TIMING_H_

#include <cstdint>

#include "src/sim/sim_time.h"
#include "src/util/units.h"

namespace flashsim {

// How per-I/O flash latency noise draws are keyed (flash_noise_sigma > 0
// only; with sigma == 0 no draws happen and the mode is inert).
enum class FlashRngMode : uint8_t {
  // One shared per-run stream consumed in dispatch order. Order-couples
  // every host's flash charges, so the partitioned engine disables
  // flash/write certification while noise is armed in this mode.
  kLegacy = 0,
  // Counter-keyed substreams: each draw is keyed by (host, per-device op
  // counter) via FlashStreamSeed/FlashDrawSeed — a pure function of the
  // host's own history, safe to execute out of global order.
  kSubstream = 1,
};

struct TimingModel {
  // RAM cache access (read or write) per block; 400 ns ~= 10 GB/s DDR3.
  SimDuration ram_access_ns = 400;

  // Flash device, average per-block (validated in §6.2 to be a sound model).
  SimDuration flash_read_ns = 88 * kMicrosecond;
  SimDuration flash_write_ns = 21 * kMicrosecond;

  // Network: fixed per-packet latency plus per-bit transfer time.
  SimDuration net_packet_base_ns = 8200;  // 8.2 us
  SimDuration net_per_bit_ns = 1;         // 1 ns/bit ~= 1 Gb/s

  // Filer: cache-hit ("fast") and miss ("slow") read service, buffered write
  // service, and the probability a read is fast (prefetch success, §7.3).
  SimDuration filer_fast_read_ns = 92 * kMicrosecond;
  SimDuration filer_slow_read_ns = 7952 * kMicrosecond;
  SimDuration filer_write_ns = 92 * kMicrosecond;
  double filer_fast_read_rate = 0.90;

  // Number of requests the filer can service concurrently. High-end filers
  // are heavily parallel; the network is the intended contention point.
  int filer_concurrency = 64;

  // Flash device queue depth. The paper models the flash with average
  // per-block access times and no device-level queueing (its observed
  // latencies track the device latency directly, e.g. Fig 4's ~88 us floor
  // with eight concurrent threads), so the default is effectively
  // "latency-only". Set to 1 to model a strictly serial device; the
  // ablation bench sweeps this.
  int flash_concurrency = 64;

  // Coherence protocol control plane (DESIGN.md §15, coherence != perfect
  // only). A directory lookup / invalidation report occupies the owning
  // filer shard for this long — deliberately cheap next to a data read:
  // the directory is an in-memory map on the filer.
  SimDuration coherence_ctrl_ns = 10 * kMicrosecond;
  // Read-lease lifetime for coherence=lease. NFS-style delegations run
  // seconds; 100 ms keeps lease expiry observable at simulated-minutes run
  // lengths while still amortizing many reads per grant.
  SimDuration lease_ns = 100 * kMillisecond;

  // Maximum outstanding background write-through RPCs per host (see
  // src/device/background_writer.h). 1 models a single write-through
  // daemon, matching the paper's syncer-thread behavior.
  int writeback_window = 1;

  // Persistent flash cache (§7.8): every flash cache update also writes
  // cache metadata, modeled as a doubled flash write latency.
  bool persistent_flash = false;

  // FTL mode (§8 future work, src/ftl/): derive flash service times from a
  // page-mapped FTL (programs, GC relocations, erases) instead of the
  // validated averages. The raw NAND timings default to Table 1's averages
  // so a GC-free FTL device and the average model coincide.
  bool use_ftl = false;
  bool ftl_trim_enabled = true;  // caching-FTL TRIM on eviction (FlashTier)
  double ftl_overprovision = 0.07;
  uint32_t ftl_pages_per_block = 64;
  double ftl_wear_weight = 0.0;
  SimDuration ftl_page_read_ns = 88 * kMicrosecond;
  SimDuration ftl_page_program_ns = 21 * kMicrosecond;
  SimDuration ftl_block_erase_ns = 2000 * kMicrosecond;

  // Mean-one lognormal noise on flash service times (both average and FTL
  // modes). 0 = off: no draws are made and every committed golden digest is
  // unchanged. The §6.2 validation argues averages are sound, so this is an
  // opt-in realism knob for variance studies.
  double flash_noise_sigma = 0.0;
  FlashRngMode flash_rng_mode = FlashRngMode::kSubstream;

  SimDuration EffectiveFlashWrite() const {
    return persistent_flash ? 2 * flash_write_ns : flash_write_ns;
  }
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_DEVICE_TIMING_H_
