#include "src/device/flash_device.h"

#include <cmath>

#include "src/util/distributions.h"

namespace flashsim {

SimDuration FlashDevice::ApplyNoise(SimDuration service) {
  if (noise_sigma_ <= 0.0) {
    return service;
  }
  double z;
  if (rng_mode_ == FlashRngMode::kSubstream) {
    Rng draw(FlashDrawSeed(stream_seed_, draw_counter_++));
    z = SampleStandardNormal(draw);
  } else {
    z = SampleStandardNormal(*shared_rng_);
  }
  // Mean-one lognormal: variance without shifting the average (ssd_profile
  // uses the same shape for the §6.2 validation model).
  const double factor = std::exp(noise_sigma_ * z - 0.5 * noise_sigma_ * noise_sigma_);
  return static_cast<SimDuration>(static_cast<double>(service) * factor);
}

void FlashDevice::EnableFtl(uint64_t logical_pages, FtlParams ftl_params,
                            const FtlDeviceTimings& timings) {
  FLASHSIM_CHECK(ftl_ == nullptr);
  FLASHSIM_CHECK(logical_pages > 0);
  ftl_params.logical_pages = logical_pages;
  ftl_ = std::make_unique<Ftl>(ftl_params);
  ftl_timings_ = timings;
  free_lpns_.reserve(logical_pages);
  for (uint64_t lpn = logical_pages; lpn > 0; --lpn) {
    free_lpns_.push_back(lpn - 1);
  }
  key_to_lpn_.Reserve(logical_pages);
}

SimDuration FlashDevice::ServiceTime(const FtlCost& cost) const {
  return static_cast<SimDuration>(cost.page_reads) * ftl_timings_.page_read_ns +
         static_cast<SimDuration>(cost.page_programs) * ftl_timings_.page_program_ns +
         static_cast<SimDuration>(cost.block_erases) * ftl_timings_.block_erase_ns;
}

uint64_t FlashDevice::LpnForWrite(BlockKey key) {
  if (const uint64_t* lpn = key_to_lpn_.Find(key); lpn != nullptr) {
    return *lpn;
  }
  if (free_lpns_.empty()) {
    // The cache wrote more distinct keys than it trimmed (always the case
    // when TRIM is disabled; otherwise e.g. a lookaside refresh completing
    // after the block's eviction). Reassign the oldest mapping — a
    // non-trimming cache overwrites the logical page in place, and the
    // FTL's out-of-place write invalidates the old version itself.
    while (!allocation_order_.empty()) {
      const BlockKey victim = allocation_order_.front();
      allocation_order_.pop_front();
      if (const uint64_t* lpn = key_to_lpn_.Find(victim); lpn != nullptr) {
        const uint64_t freed = *lpn;
        key_to_lpn_.Erase(victim);
        free_lpns_.push_back(freed);
        break;
      }
    }
    FLASHSIM_CHECK(!free_lpns_.empty());
  }
  const uint64_t lpn = free_lpns_.back();
  free_lpns_.pop_back();
  key_to_lpn_.Insert(key, lpn);
  allocation_order_.push_back(key);
  return lpn;
}

SimTime FlashDevice::Read(SimTime now, BlockKey key) {
  SimDuration service;
  if (ftl_ == nullptr) {
    service = timing_->flash_read_ns;
  } else {
    const uint64_t* lpn = key_to_lpn_.Find(key);
    // Reads of never-written keys (fills racing evictions) still touch NAND.
    service = ServiceTime(ftl_->Read(lpn != nullptr ? *lpn : 0));
  }
  service = ApplyNoise(service);
  const SimTime done = resource_.Acquire(now, service);
  if (read_probe_ != nullptr) {
    read_probe_->Record(now, done - service, done);
  }
  return done;
}

SimTime FlashDevice::Write(SimTime now, BlockKey key) {
  SimDuration service;
  if (ftl_ == nullptr) {
    service = timing_->EffectiveFlashWrite();
  } else {
    service = ServiceTime(ftl_->Write(LpnForWrite(key)));
    if (timing_->persistent_flash) {
      // Persistence doubles the cache-update cost with a metadata program.
      service += ftl_timings_.page_program_ns;
    }
  }
  service = ApplyNoise(service);
  const SimTime done = resource_.Acquire(now, service);
  if (write_probe_ != nullptr) {
    write_probe_->Record(now, done - service, done);
  }
  return done;
}

void FlashDevice::Trim(BlockKey key) {
  if (ftl_ == nullptr || !timing_->ftl_trim_enabled) {
    return;
  }
  if (const uint64_t* lpn = key_to_lpn_.Find(key); lpn != nullptr) {
    ftl_->Trim(*lpn);
    free_lpns_.push_back(*lpn);
    key_to_lpn_.Erase(key);
  }
}

}  // namespace flashsim
