// Flash cache device model.
//
// Default mode treats the flash as a block device behind an opaque flash
// translation layer (§5): single average per-block read/write latencies,
// validated in §6.2. The device services up to flash_concurrency requests
// at once (NCQ-style); all traffic — foreground cache hits, asynchronous
// fills, writeback flushes — shares the device, so heavy background flash
// activity can delay foreground hits.
//
// FTL mode (the paper's §8 future work, see src/ftl/ftl.h) replaces the
// average latencies with per-operation costs derived from a page-mapped
// FTL: out-of-place writes, garbage-collection relocations, and erases.
// Cache evictions call Trim() so a caching-aware FTL can discard dead data
// instead of relocating it (the FlashTier idea).
#ifndef FLASHSIM_SRC_DEVICE_FLASH_DEVICE_H_
#define FLASHSIM_SRC_DEVICE_FLASH_DEVICE_H_

#include <deque>
#include <memory>

#include "src/device/timing.h"
#include "src/ftl/ftl.h"
#include "src/obs/telemetry.h"
#include "src/sim/resource.h"
#include "src/sim/sim_time.h"
#include "src/trace/record.h"
#include "src/util/assert.h"
#include "src/util/flat_hash.h"
#include "src/util/rng.h"

namespace flashsim {

// Raw NAND operation timings used in FTL mode. The defaults are chosen so
// that a GC-free device matches Table 1's averages, making average-latency
// and FTL-backed runs directly comparable.
struct FtlDeviceTimings {
  SimDuration page_read_ns = 88 * kMicrosecond;
  SimDuration page_program_ns = 21 * kMicrosecond;
  SimDuration block_erase_ns = 2000 * kMicrosecond;
};

class FlashDevice {
 public:
  explicit FlashDevice(const TimingModel& timing)
      : timing_(&timing), resource_("flash", timing.flash_concurrency) {}

  // Switches to FTL mode. `logical_pages` is the cache capacity in blocks
  // (each cached block occupies one logical page); `ftl_params.logical_pages`
  // is overwritten with it.
  void EnableFtl(uint64_t logical_pages, FtlParams ftl_params, const FtlDeviceTimings& timings);

  // Arms mean-one lognormal noise (sigma > 0) on every service time. In
  // kSubstream mode each draw is keyed by (stream_seed, this device's op
  // counter) — a pure function of the host's own history, independent of
  // cross-host dispatch order. In kLegacy mode draws consume `shared_rng`
  // (one per-run stream, not owned, must outlive the device) in dispatch
  // order, which order-couples every host; the partitioned engine disables
  // flash/write certification while legacy noise is armed.
  void EnableNoise(double sigma, FlashRngMode mode, uint64_t stream_seed, Rng* shared_rng) {
    FLASHSIM_CHECK(sigma > 0.0);
    FLASHSIM_CHECK(mode == FlashRngMode::kSubstream || shared_rng != nullptr);
    noise_sigma_ = sigma;
    rng_mode_ = mode;
    stream_seed_ = stream_seed;
    shared_rng_ = shared_rng;
  }
  bool noise_enabled() const { return noise_sigma_ > 0.0; }
  FlashRngMode rng_mode() const { return rng_mode_; }

  // Reads one cached block; returns completion time.
  SimTime Read(SimTime now, BlockKey key = 0);

  // Writes one block (persistence doubling applies in average mode; FTL
  // mode charges program + amortized GC work); returns completion time.
  SimTime Write(SimTime now, BlockKey key = 0);

  // Declares a block's contents dead (cache eviction/invalidation). A no-op
  // in average mode; frees the logical page in FTL mode.
  void Trim(BlockKey key);

  bool ftl_enabled() const { return ftl_ != nullptr; }
  const Ftl* ftl() const { return ftl_.get(); }

  // Telemetry service points (null = off; not owned). Probes see every
  // request — foreground hits, fills, and writeback flushes alike.
  void set_read_probe(obs::DeviceProbe* probe) { read_probe_ = probe; }
  void set_write_probe(obs::DeviceProbe* probe) { write_probe_ = probe; }

  uint64_t reads_plus_writes() const { return resource_.requests(); }
  // Load-triggered rehashes of the FTL key->LPN index (0 without FTL;
  // EnableFtl reserves for every logical page).
  uint64_t index_rehashes() const { return key_to_lpn_.growth_rehashes(); }
  SimDuration busy_time() const { return resource_.busy_time(); }
  const MultiResource& resource() const { return resource_; }

  void Reset() { resource_.Reset(); }

 private:
  // Maps a cache block key to its logical page, allocating on first write.
  uint64_t LpnForWrite(BlockKey key);

  SimDuration ServiceTime(const FtlCost& cost) const;

  // Applies the armed lognormal noise to a service time (identity when off).
  SimDuration ApplyNoise(SimDuration service);

  const TimingModel* timing_;
  MultiResource resource_;
  obs::DeviceProbe* read_probe_ = nullptr;
  obs::DeviceProbe* write_probe_ = nullptr;

  // Noise state (inert until EnableNoise).
  double noise_sigma_ = 0.0;
  FlashRngMode rng_mode_ = FlashRngMode::kSubstream;
  uint64_t stream_seed_ = 0;
  uint64_t draw_counter_ = 0;
  Rng* shared_rng_ = nullptr;

  // FTL mode state.
  std::unique_ptr<Ftl> ftl_;
  FtlDeviceTimings ftl_timings_;
  FlatHashMap<uint64_t> key_to_lpn_;
  std::vector<uint64_t> free_lpns_;
  std::deque<BlockKey> allocation_order_;  // fallback reclaim when full
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_DEVICE_FLASH_DEVICE_H_
