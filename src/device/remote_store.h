// End-to-end path from one host to the shared filer: network request packet,
// filer service, network response packet. This is the composition every
// cache stack uses for misses and writebacks.
#ifndef FLASHSIM_SRC_DEVICE_REMOTE_STORE_H_
#define FLASHSIM_SRC_DEVICE_REMOTE_STORE_H_

#include "src/device/filer.h"
#include "src/device/network_link.h"
#include "src/sim/sim_time.h"

namespace flashsim {

class RemoteStore {
 public:
  RemoteStore(NetworkLink& link, Filer& filer) : link_(&link), filer_(&filer) {}

  // Fetches one block: small request out, filer read, data packet back.
  SimTime Read(SimTime now, bool* was_fast) {
    const SimTime at_filer = link_->SendToFiler(now, /*carries_data=*/false);
    const SimTime served = filer_->Read(at_filer, was_fast);
    return link_->SendToHost(served, /*carries_data=*/true);
  }

  // Writes one block: data packet out, filer write, small ack back.
  SimTime Write(SimTime now) {
    const SimTime at_filer = link_->SendToFiler(now, /*carries_data=*/true);
    const SimTime served = filer_->Write(at_filer);
    return link_->SendToHost(served, /*carries_data=*/false);
  }

  NetworkLink& link() { return *link_; }
  Filer& filer() { return *filer_; }

 private:
  NetworkLink* link_;
  Filer* filer_;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_DEVICE_REMOTE_STORE_H_
