// Per-host network segment to the filer.
//
// Each host has a private segment (§3); each segment direction carries one
// packet at a time, and each packet costs a fixed base latency plus a small
// per-bit transfer time (§5). An I/O uses one packet each way: reads send a
// small request and receive a data packet; writes send a data packet and
// receive a small acknowledgement.
#ifndef FLASHSIM_SRC_DEVICE_NETWORK_LINK_H_
#define FLASHSIM_SRC_DEVICE_NETWORK_LINK_H_

#include <cstdint>

#include "src/device/timing.h"
#include "src/obs/telemetry.h"
#include "src/sim/resource.h"
#include "src/sim/sim_time.h"

namespace flashsim {

class NetworkLink {
 public:
  NetworkLink(const TimingModel& timing, uint32_t block_bytes, const SimClock* clock = nullptr)
      : timing_(&timing),
        block_bytes_(block_bytes),
        to_filer_("net.to_filer", clock),
        from_filer_("net.from_filer", clock) {}

  // Header-only packet (read request, write ack).
  SimDuration SmallPacketTime() const { return timing_->net_packet_base_ns; }

  // Packet carrying one block of data.
  SimDuration DataPacketTime() const {
    return timing_->net_packet_base_ns +
           static_cast<SimDuration>(block_bytes_) * 8 * timing_->net_per_bit_ns;
  }

  // Occupies the host->filer direction; returns packet arrival time.
  SimTime SendToFiler(SimTime now, bool carries_data) {
    const SimDuration wire = carries_data ? DataPacketTime() : SmallPacketTime();
    const SimTime done = to_filer_.Acquire(now, wire);
    if (to_filer_probe_ != nullptr) {
      to_filer_probe_->Record(now, done - wire, done);
    }
    return done;
  }

  // Occupies the filer->host direction; returns packet arrival time.
  SimTime SendToHost(SimTime now, bool carries_data) {
    const SimDuration wire = carries_data ? DataPacketTime() : SmallPacketTime();
    const SimTime done = from_filer_.Acquire(now, wire);
    if (from_filer_probe_ != nullptr) {
      from_filer_probe_->Record(now, done - wire, done);
    }
    return done;
  }

  // Telemetry service points, one per direction (null = off; not owned).
  void set_to_filer_probe(obs::DeviceProbe* probe) { to_filer_probe_ = probe; }
  void set_from_filer_probe(obs::DeviceProbe* probe) { from_filer_probe_ = probe; }

  SimDuration busy_time() const { return to_filer_.busy_time() + from_filer_.busy_time(); }
  SimDuration wait_time() const { return to_filer_.wait_time() + from_filer_.wait_time(); }
  uint64_t packets() const { return to_filer_.requests() + from_filer_.requests(); }
  const Resource& to_filer() const { return to_filer_; }
  const Resource& from_filer() const { return from_filer_; }

  void Reset() {
    to_filer_.Reset();
    from_filer_.Reset();
  }

 private:
  const TimingModel* timing_;
  uint32_t block_bytes_;
  Resource to_filer_;
  Resource from_filer_;
  obs::DeviceProbe* to_filer_probe_ = nullptr;
  obs::DeviceProbe* from_filer_probe_ = nullptr;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_DEVICE_NETWORK_LINK_H_
