// Per-host background write-through daemon.
//
// "Asynchronous write-through" (§3.5) issues writebacks immediately without
// blocking the requester. Issuing them as unbounded fire-and-forget
// reservations would let a writeback burst reserve the network link far
// into the future and head-of-line-block reads — a behavior the paper's
// results rule out (async and periodic policies perform identically,
// Fig 2). Real clients bound their outstanding write RPCs; this daemon
// models that: queued writebacks drain FIFO with at most `window`
// outstanding filer writes, each acquiring the link/filer at its actual
// start time so reads interleave fairly.
//
// The lookaside architecture also uses it to refresh the flash copy after
// the filer write completes (flash never holds dirty data, §3.3).
#ifndef FLASHSIM_SRC_DEVICE_BACKGROUND_WRITER_H_
#define FLASHSIM_SRC_DEVICE_BACKGROUND_WRITER_H_

#include <cstdint>

#include "src/backend/storage_service.h"
#include "src/device/flash_device.h"
#include "src/trace/record.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_time.h"
#include "src/util/ring_deque.h"

namespace flashsim {

class BackgroundWriter : public EventHandler {
 public:
  // `flash` may be null if no post-write flash refresh is ever requested.
  BackgroundWriter(EventQueue& queue, StorageService& remote, FlashDevice* flash,
                   int window = 1);

  // Queues one block writeback to the filer, optionally refreshing the
  // flash copy of `key` once the filer write completes. Never blocks the
  // caller. The key also routes the write when the backend is sharded, so
  // callers must pass the real block even without a flash refresh.
  void EnqueueFilerWrite(SimTime now, bool then_flash, BlockKey key = 0);

  // Typed-event dispatch: one in-flight filer write finished.
  void HandleEvent(SimTime now, uint32_t code, uint64_t arg) override;

  uint64_t enqueued() const { return enqueued_; }
  uint64_t completed() const { return completed_; }
  // Writebacks whose filer write has been issued (completed or in the
  // window); enqueued() - started() are still queued behind the window.
  uint64_t started() const { return completed_ + static_cast<uint64_t>(active_); }
  uint64_t pending() const { return pending_.size() + static_cast<uint64_t>(active_); }
  uint64_t max_pending() const { return max_pending_; }
  int window() const { return window_; }

 private:
  void Pump(SimTime now);

  EventQueue* queue_;
  StorageService* remote_;
  FlashDevice* flash_;
  struct Pending {
    bool then_flash;
    BlockKey key;
  };

  int window_;
  int active_ = 0;
  // RingDeque, not std::deque: the queue oscillates between empty and a few
  // entries, and libstdc++'s deque releases its chunk on empty and
  // reallocates on the next push — a heap round-trip per writeback burst.
  // The ring keeps its high-water buffer, so steady state never allocates.
  RingDeque<Pending> pending_;
  uint64_t enqueued_ = 0;
  uint64_t completed_ = 0;
  uint64_t max_pending_ = 0;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_DEVICE_BACKGROUND_WRITER_H_
