#include "src/tracegen/fs_model.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/util/assert.h"

namespace flashsim {

FsModel::FsModel(const FsModelParams& params, uint64_t seed) : params_(params) {
  FLASHSIM_CHECK(params_.total_bytes >= params_.block_bytes);
  FLASHSIM_CHECK(params_.block_bytes > 0);

  Rng rng(seed);
  const LognormalSampler body(params_.size_mu, params_.size_sigma);
  const ParetoSampler tail(params_.tail_scale_bytes, params_.tail_alpha);
  const ZipfSampler popularity(params_.popularity_levels, params_.popularity_theta);

  const uint64_t target_blocks = params_.total_bytes / params_.block_bytes;
  uint64_t accumulated = 0;
  while (accumulated < target_blocks) {
    double size_bytes = rng.NextBool(params_.tail_fraction) ? tail.Sample(rng) : body.Sample(rng);
    uint64_t size_blocks = static_cast<uint64_t>(
        std::ceil(std::max(size_bytes, 1.0) / static_cast<double>(params_.block_bytes)));
    size_blocks = std::max<uint64_t>(size_blocks, 1);
    // Clamp the last file so the model lands on the target capacity, and
    // clamp monsters so no single file dwarfs the filer.
    size_blocks = std::min(size_blocks, target_blocks - accumulated + 1);
    size_blocks = std::min(size_blocks, target_blocks / 4 + 1);

    FileInfo info;
    info.size_blocks = size_blocks;
    // Zipf rank 0 is the most common; popularity = rank + 1 gives the
    // "small integer popularities" of §4 (most files popularity 1).
    info.popularity = static_cast<uint32_t>(popularity.Sample(rng)) + 1;
    files_.push_back(info);
    accumulated += size_blocks;
    FLASHSIM_CHECK(files_.size() <= kMaxFileId);
  }
  total_blocks_ = accumulated;

  std::vector<double> weights(files_.size());
  for (size_t i = 0; i < files_.size(); ++i) {
    weights[i] = static_cast<double>(files_[i].popularity);
  }
  alias_ = std::make_unique<AliasSampler>(weights);
}

}  // namespace flashsim
