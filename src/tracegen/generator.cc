#include "src/tracegen/generator.h"

#include <algorithm>

#include "src/util/assert.h"

namespace flashsim {

SyntheticTraceSource::SyntheticTraceSource(const FsModel& fs, const SyntheticTraceSpec& spec)
    : fs_(&fs), spec_(spec), io_size_(spec.io_size_mean_blocks), rng_(spec.seed) {
  FLASHSIM_CHECK(spec_.working_set_bytes > 0);
  FLASHSIM_CHECK(spec_.num_hosts >= 1);
  FLASHSIM_CHECK(spec_.threads_per_host >= 1);
  FLASHSIM_CHECK(spec_.write_fraction >= 0.0 && spec_.write_fraction <= 1.0);
  FLASHSIM_CHECK(spec_.working_set_io_fraction >= 0.0 && spec_.working_set_io_fraction <= 1.0);
  FLASHSIM_CHECK(spec_.warmup_fraction >= 0.0 && spec_.warmup_fraction < 1.0);

  ws_blocks_ = std::max<uint64_t>(spec_.working_set_bytes / fs.block_bytes(), 1);
  const size_t num_sets = spec_.shared_working_set ? 1 : spec_.num_hosts;
  for (size_t i = 0; i < num_sets; ++i) {
    working_sets_.push_back(std::make_unique<WorkingSet>(
        fs, ws_blocks_, spec_.subregion_mean_blocks,
        Mix64(spec_.seed ^ (0x5730ULL + static_cast<uint64_t>(i)))));
  }
  total_blocks_target_ =
      static_cast<uint64_t>(spec_.volume_multiplier * static_cast<double>(ws_blocks_));
  warmup_blocks_target_ =
      static_cast<uint64_t>(spec_.warmup_fraction * static_cast<double>(total_blocks_target_));
}

void SyntheticTraceSource::GenerateOne(TraceRecord* record) {
  record->op = rng_.NextBool(spec_.write_fraction) ? TraceOp::kWrite : TraceOp::kRead;
  record->host = static_cast<uint16_t>(rng_.NextBounded(spec_.num_hosts));
  record->thread = static_cast<uint16_t>(rng_.NextBounded(spec_.threads_per_host));
  const WorkingSet& ws = working_set(record->host);
  if (rng_.NextBool(spec_.working_set_io_fraction)) {
    ws.SampleIo(rng_, io_size_, &record->file_id, &record->block, &record->block_count);
  } else {
    SampleGlobalIo(*fs_, rng_, io_size_, &record->file_id, &record->block,
                   &record->block_count);
  }
  record->warmup = emitted_blocks_ < warmup_blocks_target_;
}

bool SyntheticTraceSource::Next(TraceRecord* record) {
  for (;;) {
    if (emitted_blocks_ >= total_blocks_target_) {
      return false;
    }
    GenerateOne(record);
    emitted_blocks_ += record->block_count;
    if (spec_.skip_warmup && record->warmup) {
      continue;  // identical stream, warmup records suppressed (cold start)
    }
    return true;
  }
}

void SyntheticTraceSource::Rewind() {
  rng_.Seed(spec_.seed);
  emitted_blocks_ = 0;
}

}  // namespace flashsim
