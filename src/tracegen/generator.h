// Synthetic trace source (§4).
//
// Streams a trace with the paper's published characteristics: 80% of I/Os
// drawn from a working set and 20% from the whole file server; I/Os spread
// uniformly over hosts and threads; Poisson I/O sizes clamped to file/extent
// bounds; total volume a fixed multiple (4x) of the working set size, the
// first half flagged as cache warmup.
//
// Generation is fully deterministic in the seed. The skip_warmup option
// emits only the measured half while preserving the record stream byte-for-
// byte with the warmed run — this is how Fig 10 compares a recovered
// (persistent) cache against one that lost its contents in a crash.
#ifndef FLASHSIM_SRC_TRACEGEN_GENERATOR_H_
#define FLASHSIM_SRC_TRACEGEN_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/trace/source.h"
#include "src/tracegen/fs_model.h"
#include "src/tracegen/working_set.h"

namespace flashsim {

struct SyntheticTraceSpec {
  uint64_t working_set_bytes = 0;  // required
  double write_fraction = 0.30;    // paper baseline: 30% writes
  uint16_t num_hosts = 1;
  uint16_t threads_per_host = 8;   // paper: eight threads per host
  double working_set_io_fraction = 0.80;  // 80% of I/Os from the working set
  double io_size_mean_blocks = 1.0;       // Poisson mean, clamped to >= 1
  double subregion_mean_blocks = 2048;    // working-set chunk mean (8 MiB)
  double volume_multiplier = 4.0;         // total volume = 4x working set
  double warmup_fraction = 0.5;           // first half of volume is warmup
  bool shared_working_set = true;   // hosts share one WS (§7.9 worst case);
                                    // false gives each host a private WS
  bool skip_warmup = false;         // cold-start runs (Fig 10)
  uint64_t seed = 1;
};

class SyntheticTraceSource : public TraceSource {
 public:
  // `fs` must outlive the source.
  SyntheticTraceSource(const FsModel& fs, const SyntheticTraceSpec& spec);

  bool Next(TraceRecord* record) override;
  void Rewind() override;

  // Upper bound: every record covers at least one block, so the block
  // budget bounds the record count.
  uint64_t SizeHint() const override { return total_blocks_target_; }

  const SyntheticTraceSpec& spec() const { return spec_; }
  uint64_t working_set_blocks() const { return ws_blocks_; }
  uint64_t total_blocks_target() const { return total_blocks_target_; }
  uint64_t warmup_blocks_target() const { return warmup_blocks_target_; }
  const WorkingSet& working_set(uint16_t host) const {
    return *working_sets_[spec_.shared_working_set ? 0 : host];
  }

 private:
  void GenerateOne(TraceRecord* record);

  const FsModel* fs_;
  SyntheticTraceSpec spec_;
  std::vector<std::unique_ptr<WorkingSet>> working_sets_;
  PoissonSampler io_size_;
  Rng rng_;
  uint64_t ws_blocks_ = 0;
  uint64_t total_blocks_target_ = 0;
  uint64_t warmup_blocks_target_ = 0;
  uint64_t emitted_blocks_ = 0;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_TRACEGEN_GENERATOR_H_
