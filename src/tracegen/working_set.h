// Working sets: popularity-weighted collections of file subregions (§4).
//
// The generator samples the file-server model to produce a working set of
// the requested size: files are chosen by popularity, subregion lengths are
// Poisson, subregion starting points uniform. Overlapping picks are clipped
// so the working set's block count is exact, which matters because every
// experiment's x-axis is "working set size vs. cache size".
#ifndef FLASHSIM_SRC_TRACEGEN_WORKING_SET_H_
#define FLASHSIM_SRC_TRACEGEN_WORKING_SET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/tracegen/fs_model.h"
#include "src/util/distributions.h"
#include "src/util/rng.h"

namespace flashsim {

struct WsExtent {
  uint32_t file_id = 0;
  uint64_t start = 0;   // first block within the file
  uint64_t length = 0;  // in blocks
};

class WorkingSet {
 public:
  // Builds a working set of ~target_blocks (exact except the final extent,
  // which is trimmed to land on target) from the model.
  WorkingSet(const FsModel& fs, uint64_t target_blocks, double subregion_mean_blocks,
             uint64_t seed);

  uint64_t size_blocks() const { return size_blocks_; }
  const std::vector<WsExtent>& extents() const { return extents_; }

  // Samples an I/O from inside the working set: extent by popularity*length,
  // start uniform, length Poisson clamped to the extent.
  void SampleIo(Rng& rng, const PoissonSampler& io_size, uint32_t* file_id, uint64_t* block,
                uint32_t* count) const;

  // True if (file, block) lies inside the working set; O(log n), test use.
  bool Contains(uint32_t file_id, uint64_t block) const;

 private:
  const FsModel* fs_;
  std::vector<WsExtent> extents_;
  uint64_t size_blocks_ = 0;
  std::unique_ptr<AliasSampler> alias_;
  // Per-file merged coverage intervals [start -> end), for Contains().
  std::map<std::pair<uint32_t, uint64_t>, uint64_t> coverage_;
};

// Samples an I/O from the whole file server (the non-working-set 20%):
// file by popularity, start uniform, length Poisson clamped to the file.
void SampleGlobalIo(const FsModel& fs, Rng& rng, const PoissonSampler& io_size,
                    uint32_t* file_id, uint64_t* block, uint32_t* count);

}  // namespace flashsim

#endif  // FLASHSIM_SRC_TRACEGEN_WORKING_SET_H_
