#include "src/tracegen/working_set.h"

#include <algorithm>

#include "src/util/assert.h"

namespace flashsim {

namespace {

// Clamped-Poisson I/O length: at least one block, at most `limit`.
uint32_t SampleIoLength(Rng& rng, const PoissonSampler& io_size, uint64_t limit) {
  uint64_t len = std::max<uint64_t>(io_size.Sample(rng), 1);
  return static_cast<uint32_t>(std::min<uint64_t>(len, std::max<uint64_t>(limit, 1)));
}

}  // namespace

WorkingSet::WorkingSet(const FsModel& fs, uint64_t target_blocks, double subregion_mean_blocks,
                       uint64_t seed)
    : fs_(&fs) {
  FLASHSIM_CHECK(target_blocks >= 1);
  FLASHSIM_CHECK(target_blocks <= fs.total_blocks());

  Rng rng(seed);
  const PoissonSampler subregion_len(subregion_mean_blocks);

  // Per-file coverage: file -> map<start, end> of merged chosen intervals.
  std::vector<std::map<uint64_t, uint64_t>> covered(fs.num_files());

  uint64_t stuck = 0;
  const uint64_t max_stuck = 64 * (fs.total_blocks() / std::max<uint64_t>(target_blocks, 1) + 16);
  while (size_blocks_ < target_blocks && stuck < max_stuck) {
    const uint32_t file_id = fs.SampleFileByPopularity(rng);
    const FileInfo& info = fs.file(file_id);
    uint64_t want = std::max<uint64_t>(subregion_len.Sample(rng), 1);
    want = std::min({want, info.size_blocks, target_blocks - size_blocks_});
    const uint64_t start =
        info.size_blocks == want ? 0 : rng.NextBounded(info.size_blocks - want + 1);
    uint64_t lo = start;
    const uint64_t hi = start + want;

    // Subtract existing coverage; add only new pieces so size is exact.
    auto& ivals = covered[file_id];
    bool added = false;
    auto it = ivals.lower_bound(lo);
    if (it != ivals.begin()) {
      auto prev = std::prev(it);
      if (prev->second > lo) {
        lo = std::min(prev->second, hi);
      }
    }
    while (lo < hi) {
      it = ivals.lower_bound(lo);
      const uint64_t piece_end = (it != ivals.end()) ? std::min(it->first, hi) : hi;
      if (piece_end > lo) {
        extents_.push_back(WsExtent{file_id, lo, piece_end - lo});
        size_blocks_ += piece_end - lo;
        added = true;
      }
      lo = (it != ivals.end()) ? std::max(piece_end, it->second) : hi;
      if (it != ivals.end() && it->first < hi) {
        // Skip past this existing interval.
        lo = std::max(lo, it->second);
      }
    }
    // Merge [start, hi) into the coverage map.
    uint64_t mlo = start;
    uint64_t mhi = hi;
    auto first = ivals.lower_bound(mlo);
    if (first != ivals.begin() && std::prev(first)->second >= mlo) {
      --first;
    }
    auto last = first;
    while (last != ivals.end() && last->first <= mhi) {
      mlo = std::min(mlo, last->first);
      mhi = std::max(mhi, last->second);
      ++last;
    }
    ivals.erase(first, last);
    ivals.emplace(mlo, mhi);

    stuck = added ? 0 : stuck + 1;
  }

  // Fallback: if random sampling plateaued (tiny file systems in tests),
  // sweep files linearly and take uncovered prefixes.
  for (uint32_t f = 0; f < fs.num_files() && size_blocks_ < target_blocks; ++f) {
    auto& ivals = covered[f];
    uint64_t lo = 0;
    const uint64_t file_end = fs.file(f).size_blocks;
    for (auto& [istart, iend] : ivals) {
      if (lo < istart && size_blocks_ < target_blocks) {
        const uint64_t take = std::min(istart - lo, target_blocks - size_blocks_);
        extents_.push_back(WsExtent{f, lo, take});
        size_blocks_ += take;
      }
      lo = std::max(lo, iend);
    }
    if (lo < file_end && size_blocks_ < target_blocks) {
      const uint64_t take = std::min(file_end - lo, target_blocks - size_blocks_);
      extents_.push_back(WsExtent{f, lo, take});
      size_blocks_ += take;
    }
  }
  FLASHSIM_CHECK(size_blocks_ == target_blocks);
  FLASHSIM_CHECK(!extents_.empty());

  // Extent sampling weight: file popularity x extent length, approximating
  // "I/Os among files weighted by popularity" with uniform offsets.
  std::vector<double> weights(extents_.size());
  for (size_t i = 0; i < extents_.size(); ++i) {
    weights[i] = static_cast<double>(fs.file(extents_[i].file_id).popularity) *
                 static_cast<double>(extents_[i].length);
  }
  alias_ = std::make_unique<AliasSampler>(weights);

  // Flattened coverage for Contains().
  for (uint32_t f = 0; f < fs.num_files(); ++f) {
    for (auto& [istart, iend] : covered[f]) {
      coverage_[{f, istart}] = iend;
    }
  }
}

void WorkingSet::SampleIo(Rng& rng, const PoissonSampler& io_size, uint32_t* file_id,
                          uint64_t* block, uint32_t* count) const {
  const WsExtent& extent = extents_[alias_->Sample(rng)];
  const uint32_t len = SampleIoLength(rng, io_size, extent.length);
  const uint64_t start =
      extent.length == len ? 0 : rng.NextBounded(extent.length - len + 1);
  *file_id = extent.file_id;
  *block = extent.start + start;
  *count = len;
}

bool WorkingSet::Contains(uint32_t file_id, uint64_t block) const {
  auto it = coverage_.upper_bound({file_id, block});
  if (it == coverage_.begin()) {
    return false;
  }
  --it;
  return it->first.first == file_id && it->first.second <= block && block < it->second;
}

void SampleGlobalIo(const FsModel& fs, Rng& rng, const PoissonSampler& io_size,
                    uint32_t* file_id, uint64_t* block, uint32_t* count) {
  const uint32_t f = fs.SampleFileByPopularity(rng);
  const FileInfo& info = fs.file(f);
  const uint32_t len = SampleIoLength(rng, io_size, info.size_blocks);
  const uint64_t start =
      info.size_blocks == len ? 0 : rng.NextBounded(info.size_blocks - len + 1);
  *file_id = f;
  *block = start;
  *count = len;
}

}  // namespace flashsim
