// Impressions-style file server model (§4, [4]).
//
// The paper seeds its trace generator with a list of files and file sizes
// from the Impressions file-system generator and assigns each file a small
// integer popularity drawn from a Zipfian distribution. We synthesize the
// same artifact: file sizes follow the well-established lognormal body +
// Pareto tail shape (Agrawal et al.), scaled so the files sum to the
// configured filer capacity (1.4 TB in the paper, divided by the scale
// factor here).
#ifndef FLASHSIM_SRC_TRACEGEN_FS_MODEL_H_
#define FLASHSIM_SRC_TRACEGEN_FS_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/trace/record.h"
#include "src/util/distributions.h"
#include "src/util/rng.h"

namespace flashsim {

struct FsModelParams {
  uint64_t total_bytes = 0;        // target filer capacity (post-scaling)
  uint32_t block_bytes = 4096;

  // Lognormal body of the file-size distribution, in bytes.
  double size_mu = 10.5;      // median ~ e^10.5 ~= 36 KB
  double size_sigma = 2.3;    // heavy spread typical of real file systems
  // A small fraction of files is resampled from a Pareto tail (large files).
  double tail_fraction = 0.02;
  double tail_scale_bytes = 64.0 * 1024 * 1024;
  double tail_alpha = 1.3;

  // Popularity: small integers, Zipf-distributed over a bounded range.
  // Theta 1.8 makes popularity 1 modal (~half of files) with a small mean,
  // matching §4's "small integer popularities".
  uint32_t popularity_levels = 32;
  double popularity_theta = 1.8;
};

struct FileInfo {
  uint64_t size_blocks = 0;
  uint32_t popularity = 1;  // small integer weight
};

// Immutable once built; sampling uses caller-provided Rngs so concurrent
// simulations can share one model.
class FsModel {
 public:
  FsModel(const FsModelParams& params, uint64_t seed);

  uint32_t num_files() const { return static_cast<uint32_t>(files_.size()); }
  const FileInfo& file(uint32_t id) const { return files_[id]; }
  uint64_t total_blocks() const { return total_blocks_; }
  uint32_t block_bytes() const { return params_.block_bytes; }
  const FsModelParams& params() const { return params_; }

  // Picks a file id weighted by popularity.
  uint32_t SampleFileByPopularity(Rng& rng) const { return static_cast<uint32_t>(alias_->Sample(rng)); }

 private:
  FsModelParams params_;
  std::vector<FileInfo> files_;
  uint64_t total_blocks_ = 0;
  // Built after files_; samples file ids by popularity weight.
  std::unique_ptr<AliasSampler> alias_;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_TRACEGEN_FS_MODEL_H_
