#include "src/util/distributions.h"

#include <cmath>

#include "src/util/assert.h"

namespace flashsim {

// ----------------------------------------------------------------------------
// ZipfSampler

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  FLASHSIM_CHECK(n >= 1);
  FLASHSIM_CHECK(theta >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta));
}

double ZipfSampler::H(double x) const {
  // Integral of 1/t^theta: (x^(1-theta) - 1)/(1-theta), with the log limit.
  const double one_minus = 1.0 - theta_;
  if (std::fabs(one_minus) < 1e-12) {
    return std::log(x);
  }
  return (std::pow(x, one_minus) - 1.0) / one_minus;
}

double ZipfSampler::HInverse(double x) const {
  const double one_minus = 1.0 - theta_;
  if (std::fabs(one_minus) < 1e-12) {
    return std::exp(x);
  }
  return std::pow(1.0 + one_minus * x, 1.0 / one_minus);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) {
    return 0;
  }
  for (;;) {
    const double u = h_x1_ + rng.NextDouble() * (h_n_ - h_x1_);
    const double x = HInverse(u);
    const double k = std::floor(x + 0.5);
    if (k - x <= s_) {
      return static_cast<uint64_t>(k) - 1;
    }
    if (u >= H(k + 0.5) - std::pow(k, -theta_)) {
      return static_cast<uint64_t>(k) - 1;
    }
  }
}

// ----------------------------------------------------------------------------
// PoissonSampler

namespace {
constexpr double kSmallMeanCutoff = 10.0;
}  // namespace

PoissonSampler::PoissonSampler(double mean) : mean_(mean) {
  FLASHSIM_CHECK(mean >= 0.0);
  if (mean_ >= kSmallMeanCutoff) {
    b_ = 0.931 + 2.53 * std::sqrt(mean_);
    a_ = -0.059 + 0.02483 * b_;
    inv_alpha_ = 1.1239 + 1.1328 / (b_ - 3.4);
    v_r_ = 0.9277 - 3.6224 / (b_ - 2.0);
  }
}

uint64_t PoissonSampler::Sample(Rng& rng) const {
  if (mean_ == 0.0) {
    return 0;
  }
  return mean_ < kSmallMeanCutoff ? SampleSmall(rng) : SampleLarge(rng);
}

uint64_t PoissonSampler::SampleSmall(Rng& rng) const {
  // Inversion by sequential search (Devroye); exact for small means.
  const double limit = std::exp(-mean_);
  uint64_t k = 0;
  double prod = rng.NextDouble();
  while (prod > limit) {
    prod *= rng.NextDouble();
    ++k;
  }
  return k;
}

namespace {

// log(Gamma(x)) without glibc lgamma's write to the process-global signgam
// (a data race when samplers run on ParallelRunner worker threads). x is
// always >= 1 here, so the sign is known.
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

uint64_t PoissonSampler::SampleLarge(Rng& rng) const {
  // PTRS transformed rejection (Hormann 1993).
  for (;;) {
    const double u = rng.NextDouble() - 0.5;
    const double v = rng.NextDouble();
    const double us = 0.5 - std::fabs(u);
    const double k = std::floor((2.0 * a_ / us + b_) * u + mean_ + 0.43);
    if (us >= 0.07 && v <= v_r_) {
      return static_cast<uint64_t>(k);
    }
    if (k < 0.0 || (us < 0.013 && v > us)) {
      continue;
    }
    const double log_mean = std::log(mean_);
    if (std::log(v * inv_alpha_ / (a_ / (us * us) + b_)) <=
        k * log_mean - mean_ - LogGamma(k + 1.0)) {
      return static_cast<uint64_t>(k);
    }
  }
}

// ----------------------------------------------------------------------------
// Normal / lognormal / Pareto

double SampleStandardNormal(Rng& rng) {
  // Polar Box-Muller; discard the second variate to stay stateless.
  for (;;) {
    const double x = 2.0 * rng.NextDouble() - 1.0;
    const double y = 2.0 * rng.NextDouble() - 1.0;
    const double r2 = x * x + y * y;
    if (r2 > 0.0 && r2 < 1.0) {
      return x * std::sqrt(-2.0 * std::log(r2) / r2);
    }
  }
}

double LognormalSampler::Sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * SampleStandardNormal(rng));
}

double ParetoSampler::Sample(Rng& rng) const {
  // Inverse transform: x_m / U^(1/alpha), with U in (0, 1].
  double u = 1.0 - rng.NextDouble();
  return x_m_ / std::pow(u, 1.0 / alpha_);
}

// ----------------------------------------------------------------------------
// AliasSampler

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  FLASHSIM_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    FLASHSIM_CHECK(w >= 0.0);
    total += w;
  }
  FLASHSIM_CHECK(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers land at probability 1.
  for (uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

size_t AliasSampler::Sample(Rng& rng) const {
  const size_t column = rng.NextBounded(prob_.size());
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

}  // namespace flashsim
