// Tabular output for benchmark harnesses: aligned console tables plus CSV,
// so each figure's series can be eyeballed and re-plotted.
#ifndef FLASHSIM_SRC_UTIL_TABLE_H_
#define FLASHSIM_SRC_UTIL_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace flashsim {

// Collects rows of string cells and renders them padded to column widths, or
// as CSV. Construction order is header first, then AddRow per data row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Cell(double value, int precision = 2);
  static std::string Cell(int64_t value);
  static std::string Cell(uint64_t value);

  void PrintAligned(std::ostream& os) const;
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(size_t index) const { return rows_[index]; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_UTIL_TABLE_H_
