// Open-addressing hash map from uint64_t keys to small mapped types.
//
// The cache index is the hottest data structure in the simulator (every
// block access probes up to three of them). std::unordered_map's chained
// nodes cost a pointer chase per probe; this flat linear-probing table with
// tombstone-free backward-shift deletion is ~4x faster in the access loop
// and keeps memory proportional to live entries.
#ifndef FLASHSIM_SRC_UTIL_FLAT_HASH_H_
#define FLASHSIM_SRC_UTIL_FLAT_HASH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/assert.h"
#include "src/util/rng.h"

namespace flashsim {

// Maps uint64_t -> V. V must be default-constructible and cheap to move.
// Not thread-safe; the simulator is single-threaded by design.
template <typename V>
class FlatHashMap {
 public:
  FlatHashMap() { Rehash(kInitialCapacity); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Reserve(size_t n) {
    size_t needed = NextPow2(n * 8 / kMaxLoadNumerator + 1);
    if (needed > slots_.size()) {
      Rehash(needed);
    }
  }

  // Returns a pointer to the mapped value, or nullptr if absent.
  V* Find(uint64_t key) {
    size_t i = Hash(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) {
        return nullptr;
      }
      if (s.key == key) {
        return &s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  const V* Find(uint64_t key) const {
    return const_cast<FlatHashMap*>(this)->Find(key);
  }

  // Fast-path probe: the same linear probe as Find, but the moment the key
  // matches it issues a software prefetch for aux_base[value] — the record
  // the mapped value indexes (e.g. the LRU slot a cache index points at).
  // The caller's dependent load then overlaps its remaining work instead of
  // stalling on a cold cache line. Identical result to Find.
  template <typename Aux>
  const V* FindPrefetch(uint64_t key, const Aux* aux_base) const {
    size_t i = Hash(key) & mask_;
    for (;;) {
      const Slot& s = slots_[i];
      if (!s.used) {
        return nullptr;
      }
      if (s.key == key) {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(aux_base + s.value, /*rw=*/1, /*locality=*/3);
#else
        (void)aux_base;
#endif
        return &s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  // Number of load-triggered rehashes since construction (Reserve and the
  // initial sizing do not count). A nonzero value on a pre-sized table
  // means the Reserve bound was wrong — surfaced via Metrics so capacity
  // regressions are visible.
  uint64_t growth_rehashes() const { return growth_rehashes_; }

  // Inserts or overwrites; returns a reference to the mapped value.
  V& Insert(uint64_t key, V value) {
    MaybeGrow();
    size_t i = Hash(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.value = std::move(value);
        ++size_;
        return s.value;
      }
      if (s.key == key) {
        s.value = std::move(value);
        return s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  // Finds key, default-constructing the entry if absent.
  V& operator[](uint64_t key) {
    MaybeGrow();
    size_t i = Hash(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.value = V();
        ++size_;
        return s.value;
      }
      if (s.key == key) {
        return s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  // Removes key if present; returns whether it was present. Uses backward
  // shifting so no tombstones accumulate.
  bool Erase(uint64_t key) {
    size_t i = Hash(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) {
        return false;
      }
      if (s.key == key) {
        break;
      }
      i = (i + 1) & mask_;
    }
    // Backward-shift deletion: pull displaced followers into the hole.
    size_t hole = i;
    size_t j = (i + 1) & mask_;
    for (;;) {
      Slot& s = slots_[j];
      if (!s.used) {
        break;
      }
      const size_t home = Hash(s.key) & mask_;
      // s may move into the hole only if the hole lies within its probe path.
      const bool movable = ((j - home) & mask_) >= ((j - hole) & mask_);
      if (movable) {
        slots_[hole] = std::move(s);
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole].used = false;
    slots_[hole].value = V();
    --size_;
    return true;
  }

  void Clear() {
    for (Slot& s : slots_) {
      s.used = false;
      s.value = V();
    }
    size_ = 0;
  }

  // Calls fn(key, value&) for every live entry in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.used) {
        fn(s.key, s.value);
      }
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) {
        fn(s.key, s.value);
      }
    }
  }

 private:
  struct Slot {
    uint64_t key = 0;
    V value{};
    bool used = false;
  };

  static constexpr size_t kInitialCapacity = 16;
  static constexpr size_t kMaxLoadNumerator = 7;  // grow above 7/8 load

  static size_t Hash(uint64_t key) { return static_cast<size_t>(Mix64(key)); }

  static size_t NextPow2(size_t n) {
    size_t p = kInitialCapacity;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  void MaybeGrow() {
    if ((size_ + 1) * 8 >= slots_.size() * kMaxLoadNumerator) {
      ++growth_rehashes_;
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    FLASHSIM_CHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (s.used) {
        Insert(s.key, std::move(s.value));
      }
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  uint64_t growth_rehashes_ = 0;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_UTIL_FLAT_HASH_H_
