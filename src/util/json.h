// Minimal JSON value: enough to emit machine-readable sweep results and
// round-trip Metrics snapshots. Objects preserve insertion order so emitted
// documents are deterministic; numbers are stored as int64 or double and
// printed so they parse back bit-identically.
#ifndef FLASHSIM_SRC_UTIL_JSON_H_
#define FLASHSIM_SRC_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace flashsim {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}           // NOLINT
  JsonValue(int64_t value) : type_(Type::kInt), int_(value) {}          // NOLINT
  JsonValue(uint64_t value) : type_(Type::kInt), int_(static_cast<int64_t>(value)) {}  // NOLINT
  JsonValue(int value) : type_(Type::kInt), int_(value) {}              // NOLINT
  JsonValue(double value) : type_(Type::kDouble), double_(value) {}     // NOLINT
  JsonValue(std::string value) : type_(Type::kString), string_(std::move(value)) {}  // NOLINT
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kInt || type_ == Type::kDouble; }

  bool AsBool() const;
  int64_t AsInt() const;
  uint64_t AsUint() const { return static_cast<uint64_t>(AsInt()); }
  double AsDouble() const;  // ints convert
  const std::string& AsString() const;

  // Array access.
  void Append(JsonValue value);
  size_t size() const;
  const JsonValue& at(size_t index) const;

  // Object access. Set overwrites an existing key in place; Get returns
  // nullptr when absent.
  void Set(const std::string& key, JsonValue value);
  const JsonValue* Get(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  // Serializes. indent < 0 yields one line; otherwise pretty-prints with
  // the given indent width.
  std::string Dump(int indent = -1) const;

  // Parses one JSON document (surrounding whitespace allowed). Returns
  // nullopt on malformed input.
  static std::optional<JsonValue> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_UTIL_JSON_H_
