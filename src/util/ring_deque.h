// Power-of-two ring-buffer FIFO.
//
// The simulator's per-thread trace backlogs are plain FIFOs with a
// reservable bound; std::deque cannot reserve and allocates a fresh map
// node every few hundred entries. This ring keeps elements contiguous,
// grows by doubling, and after Reserve never allocates again while the
// queue stays within the reserved capacity.
#ifndef FLASHSIM_SRC_UTIL_RING_DEQUE_H_
#define FLASHSIM_SRC_UTIL_RING_DEQUE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/util/assert.h"

namespace flashsim {

// FIFO of T with O(1) push_back/pop_front. T must be movable.
template <typename T>
class RingDeque {
 public:
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }

  // Grows capacity to the smallest power of two >= n (never shrinks).
  void Reserve(size_t n) {
    if (n > buf_.size()) {
      Grow(NextPow2(n));
    }
  }

  void push_back(T value) {
    if (size_ == buf_.size()) {
      Grow(buf_.empty() ? kMinCapacity : buf_.size() * 2);
    }
    buf_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  T& front() {
    FLASHSIM_DCHECK(size_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    FLASHSIM_DCHECK(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    FLASHSIM_DCHECK(size_ > 0);
    buf_[head_] = T();  // drop any owned resources eagerly
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() {
    while (!empty()) {
      pop_front();
    }
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  static size_t NextPow2(size_t n) {
    size_t p = kMinCapacity;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  void Grow(size_t new_capacity) {
    std::vector<T> grown(new_capacity);
    for (size_t i = 0; i < size_; ++i) {
      grown[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(grown);
    mask_ = new_capacity - 1;
    head_ = 0;
  }

  std::vector<T> buf_;
  size_t mask_ = 0;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_UTIL_RING_DEQUE_H_
