#include "src/util/units.h"

#include <cstdio>

namespace flashsim {

std::string FormatSize(uint64_t bytes) {
  char buf[48];
  const double b = static_cast<double>(bytes);
  if (bytes >= kTiB) {
    std::snprintf(buf, sizeof(buf), "%.1fT", b / static_cast<double>(kTiB));
  } else if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1fG", b / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1fM", b / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1fK", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatDuration(int64_t ns) {
  char buf[48];
  const double v = static_cast<double>(ns);
  if (ns >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", v / static_cast<double>(kSecond));
  } else if (ns >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms", v / static_cast<double>(kMillisecond));
  } else if (ns >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.2fus", v / static_cast<double>(kMicrosecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace flashsim
