// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic components (trace generation, filer fast/slow read choice,
// SSD latency noise) draw from explicitly seeded Rng instances so that every
// simulation run is exactly reproducible. The generator is xoshiro256**,
// seeded via SplitMix64; both are public-domain algorithms by Blackman and
// Vigna with excellent statistical quality and ~1 ns/draw throughput.
#ifndef FLASHSIM_SRC_UTIL_RNG_H_
#define FLASHSIM_SRC_UTIL_RNG_H_

#include <cstdint>

namespace flashsim {

// SplitMix64 step; used for seeding and as a cheap hash.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless mix of a 64-bit value; used to derive independent substream
// seeds from (base_seed, stream_id) pairs.
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

// Deterministic flash-noise substream seeds (DESIGN.md §12), in the
// ShardSeed/PartitionSeed golden-ratio family with their own domain tag
// (0xf1a5, "FLAS"): one stream per (base_seed, host), and within a stream
// one independent draw key per per-host operation counter. A flash latency
// draw keyed this way is a pure function of the host's own history, so it
// can execute out of global dispatch order (the partitioned engine's
// certified flash hits) without perturbing any other host's draws.
inline uint64_t FlashStreamSeed(uint64_t base_seed, int host) {
  return Mix64((base_seed ^ 0xf1a5ULL) +
               0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(host));
}

inline uint64_t FlashDrawSeed(uint64_t stream_seed, uint64_t draw_index) {
  return Mix64(stream_seed + 0x9e3779b97f4a7c15ULL * draw_index);
}

// xoshiro256** PRNG. Satisfies the C++ UniformRandomBitGenerator concept so
// it can also back <random> distributions where convenient.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  // Re-seeds the generator; identical seeds produce identical streams.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  uint64_t NextBounded(uint64_t bound) {
    if (bound <= 1) {
      return 0;
    }
    // 128-bit multiply-shift; rejection keeps the result exactly uniform.
    for (;;) {
      const uint64_t x = Next();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const uint64_t low = static_cast<uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_UTIL_RNG_H_
