#include "src/util/stats.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "src/util/assert.h"

namespace flashsim {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
}

void StreamingStats::Reset() { *this = StreamingStats(); }

StreamingStats StreamingStats::FromState(uint64_t count, double mean, double m2, double min,
                                         double max, double sum) {
  StreamingStats stats;
  stats.count_ = count;
  stats.mean_ = mean;
  stats.m2_ = m2;
  stats.min_ = min;
  stats.max_ = max;
  stats.sum_ = sum;
  return stats;
}

double StreamingStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

int64_t LatencyHistogram::BucketMidpoint(int index) {
  if (index < (1 << kSubBucketBits)) {
    return index;
  }
  const int octave = (index >> kSubBucketBits) - 1;
  const int sub = index & ((1 << kSubBucketBits) - 1);
  const int64_t base = (static_cast<int64_t>(1) << (octave + kSubBucketBits)) +
                       (static_cast<int64_t>(sub) << octave);
  const int64_t width = static_cast<int64_t>(1) << octave;
  return base + width / 2;
}

void LatencyHistogram::Add(int64_t value_ns) {
  ++buckets_[static_cast<size_t>(BucketIndex(value_ns))];
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
}

void LatencyHistogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
}

LatencyHistogram LatencyHistogram::FromBuckets(
    const std::array<uint64_t, kNumBuckets>& buckets) {
  LatencyHistogram histogram;
  histogram.buckets_ = buckets;
  for (uint64_t b : buckets) {
    histogram.count_ += b;
  }
  return histogram;
}

int64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  FLASHSIM_CHECK(q >= 0.0 && q <= 1.0);
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return BucketMidpoint(static_cast<int>(i));
    }
  }
  return BucketMidpoint(kNumBuckets - 1);
}

std::string LatencyRecorder::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "count=%llu mean=%.2fus p50=%.2fus p99=%.2fus max=%.2fus",
                static_cast<unsigned long long>(count()), mean_us(),
                static_cast<double>(p50_ns()) / 1000.0, static_cast<double>(p99_ns()) / 1000.0,
                static_cast<double>(max_ns()) / 1000.0);
  return buf;
}

}  // namespace flashsim
