// Lightweight assertion macros used throughout the simulator.
//
// FLASHSIM_CHECK is always on (simulation correctness depends on these
// invariants and the cost is negligible next to the event loop); DCHECK
// compiles out in NDEBUG builds and is reserved for hot paths.
#ifndef FLASHSIM_SRC_UTIL_ASSERT_H_
#define FLASHSIM_SRC_UTIL_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace flashsim {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "%s:%d: CHECK failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace flashsim

#define FLASHSIM_CHECK(expr)                                 \
  do {                                                       \
    if (!(expr)) {                                           \
      ::flashsim::CheckFailed(__FILE__, __LINE__, #expr);    \
    }                                                        \
  } while (0)

#ifdef NDEBUG
#define FLASHSIM_DCHECK(expr) \
  do {                        \
  } while (0)
#else
#define FLASHSIM_DCHECK(expr) FLASHSIM_CHECK(expr)
#endif

#endif  // FLASHSIM_SRC_UTIL_ASSERT_H_
