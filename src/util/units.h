// Size and time unit helpers.
//
// Capacities are expressed in bytes and converted to 4 KB blocks at the
// configuration boundary; simulated time is int64 nanoseconds everywhere.
#ifndef FLASHSIM_SRC_UTIL_UNITS_H_
#define FLASHSIM_SRC_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace flashsim {

constexpr uint64_t kKiB = 1024ULL;
constexpr uint64_t kMiB = 1024ULL * kKiB;
constexpr uint64_t kGiB = 1024ULL * kMiB;
constexpr uint64_t kTiB = 1024ULL * kGiB;

constexpr int64_t kNanosecond = 1;
constexpr int64_t kMicrosecond = 1000;
constexpr int64_t kMillisecond = 1000 * kMicrosecond;
constexpr int64_t kSecond = 1000 * kMillisecond;

// "64 GiB" -> "64.0G"; human-readable sizes for report headers.
std::string FormatSize(uint64_t bytes);

// Nanoseconds -> "123.45us" style string.
std::string FormatDuration(int64_t ns);

}  // namespace flashsim

#endif  // FLASHSIM_SRC_UTIL_UNITS_H_
