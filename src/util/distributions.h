// Random-variate samplers used by the trace generator and device models.
//
// The paper's generator (§4) draws file popularities from a Zipfian
// distribution, I/O sizes and working-set subregion lengths from a Poisson
// distribution (clamped to file size), and offsets uniformly. The
// Impressions-style file system model uses a lognormal body with a Pareto
// tail for file sizes. The SSD profile (Fig 1) uses lognormal latency noise.
#ifndef FLASHSIM_SRC_UTIL_DISTRIBUTIONS_H_
#define FLASHSIM_SRC_UTIL_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace flashsim {

// Samples integers in [0, n) with P(k) proportional to 1/(k+1)^theta.
// Uses rejection-inversion (Hormann & Derflinger 1996), the same algorithm
// as std::discrete Zipf implementations; O(1) per draw after O(1) setup.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_ = 0;
  double theta_ = 0.0;
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double s_ = 0.0;
};

// Poisson sampler. Uses inversion by sequential search for small means and
// the PTRS transformed-rejection method for large means; exact in both
// regimes.
class PoissonSampler {
 public:
  explicit PoissonSampler(double mean);

  uint64_t Sample(Rng& rng) const;

  double mean() const { return mean_; }

 private:
  uint64_t SampleSmall(Rng& rng) const;
  uint64_t SampleLarge(Rng& rng) const;

  double mean_ = 0.0;
  // Precomputed constants for the PTRS method.
  double b_ = 0.0;
  double a_ = 0.0;
  double inv_alpha_ = 0.0;
  double v_r_ = 0.0;
};

// Lognormal sampler: exp(N(mu, sigma^2)).
class LognormalSampler {
 public:
  LognormalSampler(double mu, double sigma) : mu_(mu), sigma_(sigma) {}

  double Sample(Rng& rng) const;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

// Pareto sampler with scale x_m and shape alpha (heavy tail for large files).
class ParetoSampler {
 public:
  ParetoSampler(double x_m, double alpha) : x_m_(x_m), alpha_(alpha) {}

  double Sample(Rng& rng) const;

 private:
  double x_m_;
  double alpha_;
};

// Draws a standard normal variate via the polar Box-Muller method (no cached
// second value, to keep samplers stateless).
double SampleStandardNormal(Rng& rng);

// Weighted discrete sampler over arbitrary non-negative weights using Walker's
// alias method: O(n) setup, O(1) per draw. Used to pick files by popularity.
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);

  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_UTIL_DISTRIBUTIONS_H_
