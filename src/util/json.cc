#include "src/util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/util/assert.h"

namespace flashsim {

bool JsonValue::AsBool() const {
  FLASHSIM_CHECK(type_ == Type::kBool);
  return bool_;
}

int64_t JsonValue::AsInt() const {
  FLASHSIM_CHECK(type_ == Type::kInt);
  return int_;
}

double JsonValue::AsDouble() const {
  if (type_ == Type::kInt) {
    return static_cast<double>(int_);
  }
  FLASHSIM_CHECK(type_ == Type::kDouble);
  return double_;
}

const std::string& JsonValue::AsString() const {
  FLASHSIM_CHECK(type_ == Type::kString);
  return string_;
}

void JsonValue::Append(JsonValue value) {
  FLASHSIM_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(value));
}

size_t JsonValue::size() const {
  if (type_ == Type::kArray) {
    return array_.size();
  }
  FLASHSIM_CHECK(type_ == Type::kObject);
  return object_.size();
}

const JsonValue& JsonValue::at(size_t index) const {
  FLASHSIM_CHECK(type_ == Type::kArray);
  FLASHSIM_CHECK(index < array_.size());
  return array_[index];
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  FLASHSIM_CHECK(type_ == Type::kObject);
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  FLASHSIM_CHECK(type_ == Type::kObject);
  for (const auto& member : object_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  FLASHSIM_CHECK(type_ == Type::kObject);
  return object_;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNewlineIndent(std::string* out, int indent, int depth) {
  if (indent < 0) {
    return;
  }
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  char buf[64];
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      *out += buf;
      break;
    case Type::kDouble:
      if (!std::isfinite(double_)) {
        *out += "null";  // JSON has no inf/nan
        break;
      }
      // %.17g round-trips every double; trim to the shortest exact form.
      for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, double_);
        if (std::strtod(buf, nullptr) == double_) {
          break;
        }
      }
      *out += buf;
      break;
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& value : array_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        value.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        AppendNewlineIndent(out, indent, depth);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& member : object_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        AppendEscaped(member.first, out);
        out->push_back(':');
        if (indent >= 0) {
          out->push_back(' ');
        }
        member.second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        AppendNewlineIndent(out, indent, depth);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

// Recursive-descent parser over [pos, text.size()).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> ParseDocument() {
    SkipSpace();
    auto value = ParseValue();
    if (!value) {
      return std::nullopt;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return std::nullopt;  // trailing garbage
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) {
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s) {
          return std::nullopt;
        }
        return JsonValue(*std::move(s));
      }
      case 't':
        return ConsumeWord("true") ? std::optional<JsonValue>(JsonValue(true)) : std::nullopt;
      case 'f':
        return ConsumeWord("false") ? std::optional<JsonValue>(JsonValue(false)) : std::nullopt;
      case 'n':
        return ConsumeWord("null") ? std::optional<JsonValue>(JsonValue()) : std::nullopt;
      default:
        return ParseNumber();
    }
  }

  std::optional<JsonValue> ParseNumber() {
    const size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return std::nullopt;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    if (!is_double) {
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (end != nullptr && *end == '\0') {
        return JsonValue(static_cast<int64_t>(value));
      }
    }
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return std::nullopt;
    }
    return JsonValue(value);
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) {
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return std::nullopt;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return std::nullopt;
          }
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end == nullptr || *end != '\0') {
            return std::nullopt;
          }
          // Only the control-character range we emit; others pass as '?'.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> ParseArray() {
    if (!Consume('[')) {
      return std::nullopt;
    }
    JsonValue array = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) {
      return array;
    }
    while (true) {
      SkipSpace();
      auto value = ParseValue();
      if (!value) {
        return std::nullopt;
      }
      array.Append(*std::move(value));
      SkipSpace();
      if (Consume(']')) {
        return array;
      }
      if (!Consume(',')) {
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> ParseObject() {
    if (!Consume('{')) {
      return std::nullopt;
    }
    JsonValue object = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) {
      return object;
    }
    while (true) {
      SkipSpace();
      auto key = ParseString();
      if (!key) {
        return std::nullopt;
      }
      SkipSpace();
      if (!Consume(':')) {
        return std::nullopt;
      }
      SkipSpace();
      auto value = ParseValue();
      if (!value) {
        return std::nullopt;
      }
      object.Set(*key, *std::move(value));
      SkipSpace();
      if (Consume('}')) {
        return object;
      }
      if (!Consume(',')) {
        return std::nullopt;
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace flashsim
