// Streaming statistics and latency histograms.
//
// The simulator's governing metric is application-observed latency (§7); we
// track count/mean/min/max exactly (Welford for variance) plus a log-scale
// histogram giving approximate percentiles without storing samples.
#ifndef FLASHSIM_SRC_UTIL_STATS_H_
#define FLASHSIM_SRC_UTIL_STATS_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace flashsim {

// Exact first/second-moment accumulator (Welford's online algorithm).
class StreamingStats {
 public:
  void Add(double x);
  void Merge(const StreamingStats& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  // Serialization support (harness JSON sink): raw accumulator state, and
  // reconstruction from a previously-read state. raw_m2/raw_min/raw_max
  // return the stored values without the count==0 masking above.
  double raw_m2() const { return m2_; }
  double raw_min() const { return min_; }
  double raw_max() const { return max_; }
  static StreamingStats FromState(uint64_t count, double mean, double m2, double min,
                                  double max, double sum);

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Latency recorder over non-negative integer values (nanoseconds).
//
// Buckets are log2-spaced with 8 linear sub-buckets per octave, giving a
// worst-case quantile error under 13% across the full int64 range while
// using a fixed 512-bucket footprint.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 3;  // 8 sub-buckets per octave
  static constexpr int kNumBuckets = 64 << kSubBucketBits;

  void Add(int64_t value_ns);
  // One-pass batch statistics over the clamped (negative -> 0) values,
  // computed alongside the bucket increments in AddBatch.
  struct BatchStats {
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
  };
  // Adds n values (n >= 1) in one pass, equivalent to n Add calls in any
  // order (the buckets are pure increments), and returns the batch's
  // clamped sum/min/max — obs::Histogram's staged-flush primitive, inline
  // so everything fuses into a single loop over the staging array.
  BatchStats AddBatch(const int64_t* values, size_t n) {
    BatchStats stats;
    stats.min = values[0] < 0 ? 0 : values[0];
    stats.max = stats.min;
    for (size_t i = 0; i < n; ++i) {
      ++buckets_[static_cast<size_t>(BucketIndex(values[i]))];
      int64_t v = values[i];
      if (v < 0) {
        v = 0;
      }
      stats.sum += v;
      if (v < stats.min) {
        stats.min = v;
      }
      if (v > stats.max) {
        stats.max = v;
      }
    }
    count_ += n;
    return stats;
  }
  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  // Approximate quantile (q in [0,1]); returns a representative value from
  // the bucket containing the q-th sample.
  int64_t Quantile(double q) const;
  int64_t p50() const { return Quantile(0.50); }
  int64_t p99() const { return Quantile(0.99); }

  // Serialization support: direct bucket access and reconstruction.
  const std::array<uint64_t, kNumBuckets>& buckets() const { return buckets_; }
  static LatencyHistogram FromBuckets(const std::array<uint64_t, kNumBuckets>& buckets);

 private:
  static int BucketIndex(int64_t value) {
    if (value < 0) {
      value = 0;
    }
    const uint64_t v = static_cast<uint64_t>(value);
    if (v < (1u << kSubBucketBits)) {
      return static_cast<int>(v);
    }
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBucketBits;
    const int sub = static_cast<int>((v >> shift) & ((1u << kSubBucketBits) - 1));
    return ((msb - kSubBucketBits + 1) << kSubBucketBits) + sub;
  }
  static int64_t BucketMidpoint(int index);

  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
};

// Combined mean + histogram latency tracker, the unit of metric collection.
class LatencyRecorder {
 public:
  void Record(int64_t latency_ns) {
    stats_.Add(static_cast<double>(latency_ns));
    histogram_.Add(latency_ns);
  }
  void Merge(const LatencyRecorder& other) {
    stats_.Merge(other.stats_);
    histogram_.Merge(other.histogram_);
  }
  void Reset() {
    stats_.Reset();
    histogram_.Reset();
  }

  uint64_t count() const { return stats_.count(); }
  double mean_ns() const { return stats_.mean(); }
  double mean_us() const { return stats_.mean() / 1000.0; }
  int64_t max_ns() const { return static_cast<int64_t>(stats_.max()); }
  int64_t p50_ns() const { return histogram_.p50(); }
  int64_t p99_ns() const { return histogram_.p99(); }
  int64_t quantile_ns(double q) const { return histogram_.Quantile(q); }
  const StreamingStats& stats() const { return stats_; }
  const LatencyHistogram& histogram() const { return histogram_; }
  static LatencyRecorder FromState(const StreamingStats& stats,
                                   const LatencyHistogram& histogram) {
    LatencyRecorder recorder;
    recorder.stats_ = stats;
    recorder.histogram_ = histogram;
    return recorder;
  }

  // "count=… mean=…us p50=…us p99=…us" for logs and reports.
  std::string Summary() const;

 private:
  StreamingStats stats_;
  LatencyHistogram histogram_;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_UTIL_STATS_H_
