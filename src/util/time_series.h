// Windowed time-series collection: mean latency per fixed window of
// simulated time. Used to plot warming curves (how long a cold cache takes
// to recover, Fig 10's underlying dynamics) and syncer-period effects.
#ifndef FLASHSIM_SRC_UTIL_TIME_SERIES_H_
#define FLASHSIM_SRC_UTIL_TIME_SERIES_H_

#include <cstdint>
#include <vector>

#include "src/sim/sim_time.h"
#include "src/util/assert.h"
#include "src/util/stats.h"

namespace flashsim {

class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(SimDuration window_ns) : window_ns_(window_ns) {
    FLASHSIM_CHECK(window_ns > 0);
  }

  // Records a sample at simulated time `when`. Samples may arrive slightly
  // out of order across threads; each lands in its own window.
  void Record(SimTime when, double value) {
    const size_t index = static_cast<size_t>(when / window_ns_);
    if (index >= windows_.size()) {
      windows_.resize(index + 1);
    }
    windows_[index].Add(value);
  }

  size_t num_windows() const { return windows_.size(); }
  SimDuration window_ns() const { return window_ns_; }
  SimTime window_start(size_t index) const {
    return static_cast<SimTime>(index) * window_ns_;
  }
  const StreamingStats& window(size_t index) const { return windows_[index]; }

  // Mean of window `index`, or fallback when the window holds no samples.
  double WindowMean(size_t index, double fallback = 0.0) const {
    return windows_[index].count() == 0 ? fallback : windows_[index].mean();
  }

 private:
  SimDuration window_ns_;
  std::vector<StreamingStats> windows_;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_UTIL_TIME_SERIES_H_
