#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

#include "src/util/assert.h"

namespace flashsim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FLASHSIM_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  FLASHSIM_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Cell(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Cell(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

std::string Table::Cell(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  return buf;
}

void Table::PrintAligned(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::PrintCsv(std::ostream& os) const {
  // RFC 4180: fields containing the separator, quotes, or line breaks are
  // quoted, with embedded quotes doubled. Everything else passes through
  // unquoted, so purely numeric output is unchanged.
  auto print_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (const char ch : cell) {
      if (ch == '"') {
        os << '"';
      }
      os << ch;
    }
    os << '"';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      print_cell(row[c]);
      if (c + 1 < row.size()) {
        os << ',';
      }
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace flashsim
