#include "src/sim/resource.h"

#include <algorithm>

#include "src/util/assert.h"

namespace flashsim {

void Resource::Prune() {
  if (clock_ == nullptr) {
    return;
  }
  // Any future Acquire's start time is >= the current event time, so
  // intervals ending at or before it can never conflict again.
  auto it = intervals_.begin();
  while (it != intervals_.end() && it->second <= clock_->now) {
    it = intervals_.erase(it);
  }
}

SimTime Resource::FindGap(SimTime now, SimDuration service) const {
  SimTime cursor = now;
  auto it = intervals_.upper_bound(cursor);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > cursor) {
      cursor = prev->second;
    }
  }
  while (it != intervals_.end() && it->first < cursor + service) {
    cursor = std::max(cursor, it->second);
    ++it;
  }
  return cursor;
}

SimTime Resource::Acquire(SimTime now, SimDuration service) {
  FLASHSIM_DCHECK(service >= 0);
  Prune();
  const SimTime start = FindGap(now, service);
  const SimTime end = start + service;

  // Book [start, end), merging with touching neighbors to keep the set
  // small. Zero-length bookings still count for stats but occupy nothing.
  if (service > 0) {
    auto it = intervals_.upper_bound(start);
    bool merged = false;
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second == start) {
        prev->second = end;
        merged = true;
        it = std::next(prev);
        // Absorb a touching successor.
        if (it != intervals_.end() && it->first == end) {
          prev->second = it->second;
          intervals_.erase(it);
        }
      }
    }
    if (!merged) {
      if (it != intervals_.end() && it->first == end) {
        // Extend the successor backwards: erase + reinsert with new start.
        const SimTime succ_end = it->second;
        intervals_.erase(it);
        intervals_.emplace(start, succ_end);
      } else {
        intervals_.emplace(start, end);
      }
    }
  }

  busy_time_ += service;
  wait_time_ += start - now;
  ++requests_;
  return end;
}

SimTime Resource::PeekCompletion(SimTime now, SimDuration service) const {
  return FindGap(now, service) + service;
}

void Resource::Reset() {
  intervals_.clear();
  busy_time_ = 0;
  wait_time_ = 0;
  requests_ = 0;
}

MultiResource::MultiResource(std::string name, int servers) : name_(std::move(name)) {
  FLASHSIM_CHECK(servers >= 1);
  free_times_.assign(static_cast<size_t>(servers), 0);
}

SimTime MultiResource::Acquire(SimTime now, SimDuration service) {
  FLASHSIM_DCHECK(service >= 0);
  // free_times_ is maintained as a min-heap on next-free time.
  std::pop_heap(free_times_.begin(), free_times_.end(), std::greater<SimTime>());
  SimTime& slot = free_times_.back();
  const SimTime start = std::max(now, slot);
  slot = start + service;
  std::push_heap(free_times_.begin(), free_times_.end(), std::greater<SimTime>());
  busy_time_ += service;
  wait_time_ += start - now;
  ++requests_;
  return start + service;
}

void MultiResource::Reset() {
  std::fill(free_times_.begin(), free_times_.end(), 0);
  busy_time_ = 0;
  wait_time_ = 0;
  requests_ = 0;
}

}  // namespace flashsim
