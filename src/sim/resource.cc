#include "src/sim/resource.h"

#include <algorithm>
#include <cstddef>

#include "src/util/assert.h"

namespace flashsim {

void Resource::Prune() {
  if (clock_ == nullptr) {
    return;
  }
  // Any future Acquire's start time is >= the current event time, so
  // intervals ending at or before it can never conflict again. Intervals
  // are disjoint and sorted by start, so ends are sorted too and the dead
  // ones form a prefix.
  size_t dead = 0;
  while (dead < intervals_.size() && intervals_[dead].end <= clock_->now) {
    ++dead;
  }
  if (dead > 0) {
    intervals_.erase(intervals_.begin(),
                     intervals_.begin() + static_cast<ptrdiff_t>(dead));
  }
}

SimTime Resource::FindGap(SimTime now, SimDuration service) const {
  SimTime cursor = now;
  auto it = std::upper_bound(intervals_.begin(), intervals_.end(), cursor,
                             [](SimTime t, const Interval& iv) { return t < iv.start; });
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->end > cursor) {
      cursor = prev->end;
    }
  }
  while (it != intervals_.end() && it->start < cursor + service) {
    cursor = std::max(cursor, it->end);
    ++it;
  }
  return cursor;
}

SimTime Resource::Acquire(SimTime now, SimDuration service) {
  FLASHSIM_DCHECK(service >= 0);
  Prune();
  const SimTime start = FindGap(now, service);
  const SimTime end = start + service;

  // Book [start, end), merging with touching neighbors to keep the set
  // small. Zero-length bookings still count for stats but occupy nothing.
  if (service > 0) {
    auto it = std::upper_bound(intervals_.begin(), intervals_.end(), start,
                               [](SimTime t, const Interval& iv) { return t < iv.start; });
    bool merged = false;
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->end == start) {
        prev->end = end;
        merged = true;
        // Absorb a touching successor.
        if (it != intervals_.end() && it->start == end) {
          prev->end = it->end;
          intervals_.erase(it);
        }
      }
    }
    if (!merged) {
      if (it != intervals_.end() && it->start == end) {
        // Extend the successor backwards; order by start is preserved.
        it->start = start;
      } else {
        intervals_.insert(it, Interval{start, end});
      }
    }
  }

  busy_time_ += service;
  wait_time_ += start - now;
  ++requests_;
  return end;
}

SimTime Resource::PeekCompletion(SimTime now, SimDuration service) const {
  return FindGap(now, service) + service;
}

void Resource::Reset() {
  intervals_.clear();
  busy_time_ = 0;
  wait_time_ = 0;
  requests_ = 0;
}

MultiResource::MultiResource(std::string name, int servers) : name_(std::move(name)) {
  FLASHSIM_CHECK(servers >= 1);
  free_times_.assign(static_cast<size_t>(servers), 0);
}

SimTime MultiResource::Acquire(SimTime now, SimDuration service) {
  FLASHSIM_DCHECK(service >= 0);
  // free_times_ is maintained as a min-heap on next-free time.
  std::pop_heap(free_times_.begin(), free_times_.end(), std::greater<SimTime>());
  SimTime& slot = free_times_.back();
  const SimTime start = std::max(now, slot);
  slot = start + service;
  std::push_heap(free_times_.begin(), free_times_.end(), std::greater<SimTime>());
  busy_time_ += service;
  const SimDuration waited = start - now;
  wait_time_ += waited;
  if (waited > 0) {
    ++queued_requests_;
    max_wait_ = std::max(max_wait_, waited);
  }
  ++requests_;
  return start + service;
}

void MultiResource::Reset() {
  std::fill(free_times_.begin(), free_times_.end(), 0);
  busy_time_ = 0;
  wait_time_ = 0;
  requests_ = 0;
  queued_requests_ = 0;
  max_wait_ = 0;
}

}  // namespace flashsim
