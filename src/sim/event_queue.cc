#include "src/sim/event_queue.h"

#include <algorithm>

namespace flashsim {

EventQueue::~EventQueue() { DestroyPendingCallbacks(); }

void EventQueue::DestroyPendingCallbacks() {
  // Pending callback events own live objects (and possibly overflow
  // chunks); destroy them so captures with nontrivial destructors are not
  // leaked when a queue dies with events still scheduled (RunUntil).
  for (const Entry& entry : heap_) {
    if (entry.handler != nullptr) {
      continue;
    }
    CallbackSlot& slot = SlotAt(static_cast<uint32_t>(entry.arg));
    void* obj = slot.storage;
    if (slot.overflow) {
      std::memcpy(&obj, slot.storage, sizeof(void*));
    }
    slot.destroy(obj);
  }
}

SimTime EventQueue::RunToCompletion() { return RunUntil(kSimTimeNever); }

SimTime EventQueue::RunUntil(SimTime deadline) {
  while (!heap_.empty() && heap_[0].when <= deadline) {
    DispatchHead();
  }
  return now_;
}

void EventQueue::DispatchHead() {
  // Pop-then-invoke: the entry is a 40-byte POD copy, and the callback
  // object (if any) stays in its pool slot — nothing is copied or moved
  // per event, and the callback may freely schedule new events.
  const Entry entry = heap_[0];
  PopTop();
  now_ = entry.when;
  clock_.now = entry.when;
  ++events_processed_;
  if (entry.handler != nullptr) {
    entry.handler->HandleEvent(entry.when, entry.code, entry.arg);
  } else {
    InvokeAndRecycle(static_cast<uint32_t>(entry.arg), entry.when);
  }
}

void EventQueue::PopTop() {
  const Entry last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) {
    return;
  }
  size_t i = 0;
  for (;;) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    const size_t end = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < end; ++c) {
      if (Before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Before(heap_[best], last)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void EventQueue::InvokeAndRecycle(uint32_t slot_index, SimTime now) {
  CallbackSlot& slot = SlotAt(slot_index);
  void* obj = slot.storage;
  if (slot.overflow) {
    std::memcpy(&obj, slot.storage, sizeof(void*));
  }
  // The invocation may schedule new events and grow the pool; slabs never
  // move, so `slot` stays valid. This slot is off the free list until the
  // FreeSlot below, so it cannot be reused mid-invocation.
  slot.invoke(obj, now);
  slot.destroy(obj);
  if (slot.overflow) {
    FreeOverflowChunk(obj);
  }
  FreeSlot(slot_index);
}

void EventQueue::AddSlab() {
  FLASHSIM_CHECK(slabs_.size() < (kNoSlot / kSlotsPerSlab) - 1);
  auto slab = std::make_unique<CallbackSlot[]>(kSlotsPerSlab);
  const uint32_t base = static_cast<uint32_t>(slabs_.size() * kSlotsPerSlab);
  for (size_t i = 0; i < kSlotsPerSlab; ++i) {
    slab[i].next_free =
        i + 1 < kSlotsPerSlab ? base + static_cast<uint32_t>(i) + 1 : free_slot_;
  }
  slabs_.push_back(std::move(slab));
  free_slot_ = base;
}

void* EventQueue::AllocOverflowChunk() {
  if (overflow_free_ == nullptr) {
    auto slab = std::make_unique<OverflowChunk[]>(kOverflowChunksPerSlab);
    for (size_t i = 0; i < kOverflowChunksPerSlab; ++i) {
      FreeOverflowChunk(&slab[i]);
    }
    overflow_slabs_.push_back(std::move(slab));
  }
  OverflowChunk* chunk = overflow_free_;
  std::memcpy(&overflow_free_, chunk->bytes, sizeof(overflow_free_));
  return chunk;
}

void EventQueue::Reserve(size_t pending) {
  heap_.reserve(pending);
  while (callback_pool_slots() < pending) {
    AddSlab();
  }
}

}  // namespace flashsim
