#include "src/sim/event_queue.h"

#include "src/util/assert.h"

namespace flashsim {

void EventQueue::ScheduleAt(SimTime when, Callback cb) {
  FLASHSIM_CHECK(when >= now_);
  heap_.push(Entry{when, next_seq_++, std::move(cb)});
}

SimTime EventQueue::RunToCompletion() { return RunUntil(kSimTimeNever); }

SimTime EventQueue::RunUntil(SimTime deadline) {
  while (!heap_.empty() && heap_.top().when <= deadline) {
    // Copy out before pop: the callback may schedule new events.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = entry.when;
    clock_.now = entry.when;
    ++events_processed_;
    entry.cb(now_);
  }
  return now_;
}

}  // namespace flashsim
