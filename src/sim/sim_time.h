// Simulated time.
//
// The paper's simulator worked in integer multiples of 100 ns (§7); we keep
// int64 nanoseconds, which subsumes that granularity, and expose the Table 1
// constants in these units.
#ifndef FLASHSIM_SRC_SIM_SIM_TIME_H_
#define FLASHSIM_SRC_SIM_SIM_TIME_H_

#include <cstdint>

namespace flashsim {

// Simulated nanoseconds since the start of the run.
using SimTime = int64_t;

// Durations share the representation; separate alias for readability.
using SimDuration = int64_t;

constexpr SimTime kSimTimeZero = 0;
constexpr SimTime kSimTimeNever = INT64_MAX;

}  // namespace flashsim

#endif  // FLASHSIM_SRC_SIM_SIM_TIME_H_
