// Discrete-event core: a time-ordered queue of callbacks.
//
// Events firing at equal times run in scheduling order (a monotone sequence
// number breaks ties), which makes runs exactly deterministic regardless of
// heap internals.
#ifndef FLASHSIM_SRC_SIM_EVENT_QUEUE_H_
#define FLASHSIM_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/resource.h"
#include "src/sim/sim_time.h"

namespace flashsim {

// Min-heap of (time, seq) -> callback. Single-threaded.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime now)>;

  // Schedules cb at absolute time `when` (must be >= current Now()).
  void ScheduleAt(SimTime when, Callback cb);

  // Schedules cb `delay` after the current time.
  void ScheduleAfter(SimDuration delay, Callback cb) { ScheduleAt(now_ + delay, std::move(cb)); }

  // Runs events until the queue drains. Returns the time of the last event.
  SimTime RunToCompletion();

  // Runs events with time <= deadline; later events stay queued.
  SimTime RunUntil(SimTime deadline);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  SimTime Now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

  // Monotone clock view for resources' interval pruning.
  const SimClock* clock() const { return &clock_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  SimClock clock_;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_SIM_EVENT_QUEUE_H_
