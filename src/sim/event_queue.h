// Discrete-event core: a time-ordered queue, allocation-free on the
// steady-state path.
//
// Two event kinds share one (time, seq) total order:
//
//  - Typed events: a POD record (handler, code, arg) dispatched through
//    EventHandler::HandleEvent. The simulator's recurring work — operation
//    completions, syncer ticks, background-writer steps — takes this path;
//    scheduling and dispatching a typed event never touches the heap
//    allocator.
//  - Callback events: arbitrary callables stored in a recycled slot pool.
//    Captures up to kInlineCallbackBytes live inline in the slot; larger
//    ones (up to kOverflowCallbackBytes, enforced at compile time) go to a
//    slab-recycled overflow chunk. Once the pool is warm, scheduling a
//    callback allocates nothing.
//
// The pending set is a 4-ary implicit min-heap over small trivially
// copyable entries ordered by (time, seq). Events firing at equal times run
// in scheduling order (the monotone sequence number breaks ties), which
// makes runs exactly deterministic regardless of heap internals
// (DESIGN.md §8).
#ifndef FLASHSIM_SRC_SIM_EVENT_QUEUE_H_
#define FLASHSIM_SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/resource.h"
#include "src/sim/sim_time.h"
#include "src/util/assert.h"

namespace flashsim {

// Receiver of typed events. Implementations dispatch on `code` (their own
// enum) with the 64-bit `arg` as payload. The destructor is protected:
// the queue never owns or deletes handlers, it only calls through them.
class EventHandler {
 public:
  virtual void HandleEvent(SimTime now, uint32_t code, uint64_t arg) = 0;

 protected:
  ~EventHandler() = default;
};

// Genealogical sequence source for multi-queue (partitioned) engines.
//
// A single queue's monotone seq breaks equal-time ties by scheduling
// order. With one queue per partition that order is no longer global, so
// the partitioned engine (DESIGN.md §12) composes each event's seq from
// its *genealogy* instead: the global rank of the event whose processing
// scheduled it, and a per-parent child index. Parents are processed in
// rank order and schedule their children in child-index order, so sorting
// by (time, parent_rank, child_index) reproduces exactly the (time,
// scheduling-order) total order a single serial queue would have used —
// regardless of which queue each event lives in. Root events scheduled
// before the run use rank 0 with one shared child counter.
struct SeqSource {
  uint64_t rank = 0;  // global rank of the currently executing event
  uint32_t kid = 0;   // children scheduled by that event so far
};

// Min-heap of (time, seq) -> typed record or pooled callback.
// Single-threaded.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime now)>;

  // Genealogical seq layout: seq = (parent_rank << kKidBits) | child_index.
  static constexpr int kKidBits = 20;
  static constexpr uint64_t kMaxKids = 1ULL << kKidBits;
  static constexpr uint64_t kMaxRank = 1ULL << (64 - kKidBits);

  // Captures at most this large are stored inline in a pool slot.
  static constexpr size_t kInlineCallbackBytes = 48;
  // Hard compile-time cap; larger captures use a slab-recycled overflow
  // chunk. Grow deliberately if a new call site legitimately needs more.
  static constexpr size_t kOverflowCallbackBytes = 256;

  EventQueue() = default;
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules fn at absolute time `when` (must be >= current Now(); checked
  // so time-travel bugs fail loudly instead of silently reordering).
  template <typename Fn>
  void ScheduleAt(SimTime when, Fn&& fn) {
    using Decayed = std::decay_t<Fn>;
    static_assert(std::is_invocable_v<Decayed&, SimTime>,
                  "event callbacks must be invocable as fn(SimTime now)");
    static_assert(sizeof(Decayed) <= kOverflowCallbackBytes,
                  "callback captures exceed kOverflowCallbackBytes; shrink "
                  "the capture or use a typed event");
    static_assert(alignof(Decayed) <= alignof(std::max_align_t),
                  "over-aligned callback captures are not supported");
    FLASHSIM_CHECK(when >= now_);
    const uint32_t slot_index = AllocSlot();
    CallbackSlot& slot = SlotAt(slot_index);
    void* obj;
    if constexpr (sizeof(Decayed) <= kInlineCallbackBytes) {
      slot.overflow = false;
      obj = slot.storage;
    } else {
      slot.overflow = true;
      obj = AllocOverflowChunk();
      std::memcpy(slot.storage, &obj, sizeof(void*));
    }
    ::new (obj) Decayed(std::forward<Fn>(fn));
    slot.invoke = &InvokeThunk<Decayed>;
    slot.destroy = &DestroyThunk<Decayed>;
    Push(Entry{when, ComposeSeq(), nullptr, slot_index, 0});
  }

  // Schedules fn `delay` after the current time.
  template <typename Fn>
  void ScheduleAfter(SimDuration delay, Fn&& fn) {
    ScheduleAt(now_ + delay, std::forward<Fn>(fn));
  }

  // Schedules a typed event: handler->HandleEvent(when, code, arg) fires at
  // absolute time `when` (must be >= current Now()). Never allocates.
  void ScheduleEvent(SimTime when, EventHandler* handler, uint32_t code, uint64_t arg = 0) {
    FLASHSIM_CHECK(when >= now_);
    FLASHSIM_DCHECK(handler != nullptr);
    Push(Entry{when, ComposeSeq(), handler, arg, code});
  }

  void ScheduleEventAfter(SimDuration delay, EventHandler* handler, uint32_t code,
                          uint64_t arg = 0) {
    ScheduleEvent(now_ + delay, handler, code, arg);
  }

  // Runs events until the queue drains. Returns the time of the last event.
  SimTime RunToCompletion();

  // Runs events with time <= deadline; later events stay queued.
  SimTime RunUntil(SimTime deadline);

  // Pre-sizes the heap and the callback pool for `pending` simultaneous
  // events, so a run with a known concurrency bound never grows either
  // structure mid-trace.
  void Reserve(size_t pending);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  SimTime Now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

  // --- Partitioned-engine hooks (DESIGN.md §12) ---------------------------
  //
  // The coordinator of a multi-queue run inspects queue heads, pops the
  // global (time, seq) minimum across all partitions, and either defers it
  // into a certified batch or dispatches it inline. While a source is set,
  // every scheduled event takes its seq from the genealogical composition
  // (rank << kKidBits) | kid instead of this queue's monotone counter.
  void set_seq_source(SeqSource* source) { seq_source_ = source; }

  // Head inspection. Callers must check !empty() first.
  SimTime HeadTime() const { return heap_[0].when; }
  uint64_t HeadSeq() const { return heap_[0].seq; }
  uint64_t HeadArg() const { return heap_[0].arg; }
  bool HeadIsTyped(const EventHandler* handler, uint32_t code) const {
    return heap_[0].handler == handler && heap_[0].code == code;
  }

  // Pops the head without invoking it, advancing this queue's clock and
  // event count exactly as a dispatch would. Only valid for typed events —
  // callback events own pool slots that must be recycled via dispatch.
  void PopHeadDeferred() {
    FLASHSIM_DCHECK(!heap_.empty());
    FLASHSIM_DCHECK(heap_[0].handler != nullptr);
    const SimTime when = heap_[0].when;
    PopTop();
    now_ = when;
    clock_.now = when;
    ++events_processed_;
  }

  // Pops and invokes the head event (typed or callback).
  void DispatchHead();

  // --- Serial fast-path hook (DESIGN.md §13) ------------------------------
  //
  // Accounts for a typed event that was logically scheduled at `when` and
  // immediately dispatched without ever entering the heap. The serial
  // engine's read fast path uses this when a thread's next completion is
  // provably the global next event: the queue state afterwards — clock,
  // event count, and the monotone seq counter — is exactly what a
  // ScheduleEvent + DispatchHead pair would have left, so every later
  // (time, seq) comparison and events_processed() observation is unchanged.
  void NoteInlineDispatch(SimTime when) {
    FLASHSIM_DCHECK(when >= now_);
    (void)ComposeSeq();  // the skipped ScheduleEvent would have consumed one
    now_ = when;
    clock_.now = when;
    ++events_processed_;
    ++inline_dispatches_;
  }

  // How many events NoteInlineDispatch accounted for (they are included in
  // events_processed()). Not part of Metrics — fast path on vs. off must
  // stay byte-identical there — but tests use it to prove the path fired.
  uint64_t inline_dispatches() const { return inline_dispatches_; }

  // Monotone clock view for resources' interval pruning.
  const SimClock* clock() const { return &clock_; }

  // Pool introspection (tests and allocation accounting).
  size_t callback_pool_slots() const { return slabs_.size() * kSlotsPerSlab; }
  size_t overflow_chunks_allocated() const {
    return overflow_slabs_.size() * kOverflowChunksPerSlab;
  }

 private:
  // Heap entry: trivially copyable, moved by plain assignment during sifts.
  // handler == nullptr marks a callback event whose pool slot is in `arg`.
  struct Entry {
    SimTime when;
    uint64_t seq;
    EventHandler* handler;
    uint64_t arg;
    uint32_t code;
  };
  static_assert(std::is_trivially_copyable_v<Entry>);

  // Fixed-size callback storage, recycled through a free list. Slots live
  // in slabs that never move, so references stay valid while the pool
  // grows from inside a running callback.
  struct CallbackSlot {
    void (*invoke)(void* obj, SimTime now);
    void (*destroy)(void* obj);
    uint32_t next_free;
    bool overflow;  // storage holds a chunk pointer, not the object
    alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
  };

  struct OverflowChunk {
    alignas(std::max_align_t) unsigned char bytes[kOverflowCallbackBytes];
  };

  static constexpr size_t kSlotsPerSlab = 64;
  static constexpr size_t kOverflowChunksPerSlab = 8;
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  template <typename T>
  static void InvokeThunk(void* obj, SimTime now) {
    (*static_cast<T*>(obj))(now);
  }
  template <typename T>
  static void DestroyThunk(void* obj) {
    static_cast<T*>(obj)->~T();
  }

  // (time, seq) total order: earlier time first, then scheduling order.
  static bool Before(const Entry& a, const Entry& b) {
    return a.when < b.when || (a.when == b.when && a.seq < b.seq);
  }

  // 4-ary sift-up insert: shallower than a binary heap (log4 n levels) and
  // all four children share at most two cache lines of 40-byte entries.
  void Push(const Entry& e) {
    size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const size_t parent = (i - 1) >> 2;
      if (!Before(e, heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  // Seq for the next scheduled event: genealogical when a source is set
  // (partitioned engine), this queue's monotone counter otherwise.
  uint64_t ComposeSeq() {
    if (seq_source_ != nullptr) {
      FLASHSIM_CHECK(seq_source_->rank < kMaxRank);
      FLASHSIM_CHECK(seq_source_->kid < kMaxKids);
      return (seq_source_->rank << kKidBits) | seq_source_->kid++;
    }
    return next_seq_++;
  }

  void PopTop();
  void InvokeAndRecycle(uint32_t slot_index, SimTime now);
  void DestroyPendingCallbacks();

  CallbackSlot& SlotAt(uint32_t index) {
    return slabs_[index / kSlotsPerSlab][index % kSlotsPerSlab];
  }

  uint32_t AllocSlot() {
    if (free_slot_ == kNoSlot) {
      AddSlab();
    }
    const uint32_t index = free_slot_;
    free_slot_ = SlotAt(index).next_free;
    return index;
  }

  void FreeSlot(uint32_t index) {
    SlotAt(index).next_free = free_slot_;
    free_slot_ = index;
  }

  void AddSlab();
  void* AllocOverflowChunk();
  void FreeOverflowChunk(void* chunk) {
    std::memcpy(chunk, &overflow_free_, sizeof(overflow_free_));
    overflow_free_ = static_cast<OverflowChunk*>(chunk);
  }

  std::vector<Entry> heap_;
  SimTime now_ = 0;
  SimClock clock_;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t inline_dispatches_ = 0;
  SeqSource* seq_source_ = nullptr;

  std::vector<std::unique_ptr<CallbackSlot[]>> slabs_;
  uint32_t free_slot_ = kNoSlot;
  std::vector<std::unique_ptr<OverflowChunk[]>> overflow_slabs_;
  OverflowChunk* overflow_free_ = nullptr;  // intrusive list in chunk bytes
};

// The legacy type-erased callback must take the inline path: nothing in the
// simulator may regress to per-event heap allocation by outgrowing a slot.
static_assert(sizeof(EventQueue::Callback) <= EventQueue::kInlineCallbackBytes,
              "std::function callbacks no longer fit an inline pool slot");

}  // namespace flashsim

#endif  // FLASHSIM_SRC_SIM_EVENT_QUEUE_H_
