// Timeline resources: FIFO servers modeled without per-completion events.
//
// Every thread has at most one outstanding I/O (§5), so an operation's full
// path (request packet, filer service, response packet) can be computed
// when the operation starts by *booking* each stage on its resource at the
// stage's actual start time — possibly milliseconds in the future (a slow
// filer read books its response packet after the 8 ms service). Because
// bookings land in the future, a single next-free scalar would let one
// booking blockade the resource's idle gaps; Resource therefore keeps a set
// of busy intervals and places each request in the first gap at or after
// its request time. This is physically exact for a serial link: the wire is
// genuinely idle between a request packet and its distant response.
//
// Intervals whose end precedes the simulation watermark (the event queue's
// current time) can never conflict with a future request — every booking's
// start time is at or after the event that made it — so they are pruned
// lazily and the interval set stays tiny.
#ifndef FLASHSIM_SRC_SIM_RESOURCE_H_
#define FLASHSIM_SRC_SIM_RESOURCE_H_

#include <string>
#include <vector>

#include "src/sim/sim_time.h"

namespace flashsim {

// Monotone simulation clock shared by the event queue and resources.
struct SimClock {
  SimTime now = 0;
};

// Single-server resource (a network segment direction) with gap-aware
// booking. `clock` may be null (no pruning; fine for short-lived tests).
class Resource {
 public:
  explicit Resource(std::string name, const SimClock* clock = nullptr)
      : name_(std::move(name)), clock_(clock) {}

  // Books `service` time units at the first instant >= now the server is
  // free for that long; returns the completion time.
  SimTime Acquire(SimTime now, SimDuration service);

  // Completion time if a request arrived now, without booking.
  SimTime PeekCompletion(SimTime now, SimDuration service) const;

  SimDuration busy_time() const { return busy_time_; }
  SimDuration wait_time() const { return wait_time_; }
  uint64_t requests() const { return requests_; }
  size_t booked_intervals() const { return intervals_.size(); }
  const std::string& name() const { return name_; }

  void set_clock(const SimClock* clock) { clock_ = clock; }
  void Reset();

 private:
  struct Interval {
    SimTime start;
    SimTime end;
  };

  // Start of the first gap >= now that fits `service`; prunes dead
  // intervals as a side effect when const_cast-free (Acquire only).
  SimTime FindGap(SimTime now, SimDuration service) const;
  void Prune();

  std::string name_;
  const SimClock* clock_;
  // Disjoint busy intervals sorted by start. A flat vector rather than a
  // tree: pruning keeps the set tiny (a handful of entries), inserts shift
  // a few PODs, and — unlike per-node tree allocation — the steady state
  // never touches the heap (tests/telemetry_alloc_test.cc counts on this).
  std::vector<Interval> intervals_;
  SimDuration busy_time_ = 0;
  SimDuration wait_time_ = 0;
  uint64_t requests_ = 0;
};

// k-server FIFO resource (the filer's request-processing pool, the flash
// device's internal parallelism). Requests start on the earliest-free
// server; per-server scalar timelines are kept because with many servers a
// future booking occupies only one of them.
class MultiResource {
 public:
  MultiResource(std::string name, int servers);

  SimTime Acquire(SimTime now, SimDuration service);

  SimDuration busy_time() const { return busy_time_; }
  SimDuration wait_time() const { return wait_time_; }
  uint64_t requests() const { return requests_; }
  // Requests that found every server occupied and had to queue, and the
  // longest single wait — the saturation signals behind the §7.7 knee.
  uint64_t queued_requests() const { return queued_requests_; }
  SimDuration max_wait() const { return max_wait_; }
  int servers() const { return static_cast<int>(free_times_.size()); }
  const std::string& name() const { return name_; }

  void Reset();

 private:
  std::string name_;
  // Min-heap of per-server next-free times.
  std::vector<SimTime> free_times_;
  SimDuration busy_time_ = 0;
  SimDuration wait_time_ = 0;
  uint64_t requests_ = 0;
  uint64_t queued_requests_ = 0;
  SimDuration max_wait_ = 0;
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_SIM_RESOURCE_H_
