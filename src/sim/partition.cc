#include "src/sim/partition.h"

namespace flashsim {

PartitionWorkerPool::PartitionWorkerPool(int num_partitions)
    : num_partitions_(num_partitions) {
  FLASHSIM_CHECK(num_partitions >= 1 && num_partitions <= kMaxPartitions);
  workers_.reserve(static_cast<size_t>(num_partitions_ - 1));
  for (int p = 1; p < num_partitions_; ++p) {
    workers_.emplace_back([this, p] { WorkerLoop(p); });
  }
}

PartitionWorkerPool::~PartitionWorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void PartitionWorkerPool::RunBatch(const std::function<void(int)>& fn) {
  StartBatch(fn);
  fn(0);  // coordinator runs partition 0's slice itself
  WaitBatch();
}

void PartitionWorkerPool::StartBatch(const std::function<void(int)>& fn) {
  if (num_partitions_ == 1) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FLASHSIM_DCHECK(work_ == nullptr);
    work_ = &fn;
    pending_ = num_partitions_ - 1;
    ++generation_;
  }
  work_ready_.notify_all();
}

void PartitionWorkerPool::WaitBatch() {
  if (num_partitions_ == 1) {
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return pending_ == 0; });
  work_ = nullptr;
}

void PartitionWorkerPool::WorkerLoop(int partition) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this, seen] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      fn = work_;
    }
    (*fn)(partition);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) {
        work_done_.notify_one();
      }
    }
  }
}

}  // namespace flashsim
