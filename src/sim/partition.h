// Partitioned-engine support: host→partition placement, per-partition RNG
// seed splitting, and the worker pool that fans certified event batches out
// across partitions (DESIGN.md §12).
//
// A partitioned run gives each of P partition groups its own EventQueue,
// clock, and RNG substream. The coordinator merges queue heads in global
// (time, seq) order — seq composed genealogically (see SeqSource) so the
// merge replays exactly the serial schedule — and hands batches of
// commuting, partition-local events to the pool's workers. Everything that
// touches shared state (filers, directory, metrics) executes on the
// coordinator thread in merge order, which is how num_partitions=P stays
// byte-identical to num_partitions=1.
#ifndef FLASHSIM_SRC_SIM_PARTITION_H_
#define FLASHSIM_SRC_SIM_PARTITION_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/assert.h"
#include "src/util/rng.h"

namespace flashsim {

// Hard cap on partition groups. Far above any sensible worker count; keeps
// SimConfig::Validate able to reject garbage before allocating P queues.
inline constexpr int kMaxPartitions = 64;

// Sentinel partition count meaning "pick from the machine" — the CLI's
// --partitions=auto. Must be resolved via ResolveAutoPartitions before the
// config reaches SimConfig::Validate, which rejects it like any other
// out-of-range count.
inline constexpr int kAutoPartitions = -1;

// The auto-partition policy: one partition per hardware thread, clamped to
// [1, min(kMaxPartitions, num_hosts)] — more partitions than hosts is
// invalid (see PartitionOf), more than cores just adds merge overhead.
// hardware_concurrency() may return 0 (unknown); that clamps to 1, the
// serial engine.
inline int ResolveAutoPartitions(int num_hosts) {
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  int cap = kMaxPartitions < num_hosts ? kMaxPartitions : num_hosts;
  int p = cores < cap ? cores : cap;
  return p < 1 ? 1 : p;
}

// Deterministic per-partition RNG seed split, mirroring the ShardSeed
// contract from src/backend/ (DESIGN.md §11): partition 0 anchors a fixed
// stream, later partitions perturb the pre-mix state by the golden ratio so
// streams never collide for distinct partition indices. The domain tag
// (0x9a47ULL, "PART") keeps partition streams disjoint from shard streams
// even at equal indices.
inline uint64_t PartitionSeed(uint64_t base_seed, int partition) {
  return Mix64((base_seed ^ 0x9a47ULL) +
               0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(partition));
}

// Contiguous host→partition placement: partition p owns hosts
// [ceil(p*H/P), ceil((p+1)*H/P)). Contiguity keeps each partition's hosts
// adjacent in the hosts_ vector (cache-friendly batch slices) and makes the
// mapping independent of everything but (host, H, P).
inline int PartitionOf(int host, int num_hosts, int num_partitions) {
  FLASHSIM_DCHECK(host >= 0 && host < num_hosts);
  FLASHSIM_DCHECK(num_partitions >= 1 && num_partitions <= num_hosts);
  return static_cast<int>((static_cast<int64_t>(host) * num_partitions) / num_hosts);
}

// Lazy-spawned worker pool: RunBatch(fn) invokes fn(p) for every partition
// p in [0, P) — p == 0 on the calling (coordinator) thread, the rest on
// dedicated workers — and returns only when all P invocations finish. The
// generation-counted barrier gives the coordinator↔worker handoff
// release/acquire ordering in both directions, so workers may freely write
// partition-local state between barriers without fences of their own.
class PartitionWorkerPool {
 public:
  explicit PartitionWorkerPool(int num_partitions);
  ~PartitionWorkerPool();

  PartitionWorkerPool(const PartitionWorkerPool&) = delete;
  PartitionWorkerPool& operator=(const PartitionWorkerPool&) = delete;

  void RunBatch(const std::function<void(int partition)>& fn);

  // Pipelined split of RunBatch (DESIGN.md §12): StartBatch posts fn to the
  // workers for partitions [1, P) and returns immediately — the caller runs
  // partition 0's slice itself (on its own thread, any time before
  // WaitBatch) and may keep certifying ahead while workers execute. `fn`
  // must stay alive and unmodified until WaitBatch returns. WaitBatch
  // blocks until every worker finishes; the generation barrier gives the
  // same release/acquire ordering as RunBatch. Exactly one StartBatch may
  // be outstanding. With P == 1 StartBatch is a no-op and the caller's own
  // fn(0) is the whole batch.
  void StartBatch(const std::function<void(int partition)>& fn);
  void WaitBatch();

 private:
  void WorkerLoop(int partition);

  const int num_partitions_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(int)>* work_ = nullptr;  // valid while generation is odd-phase
  uint64_t generation_ = 0;                         // bumped per RunBatch
  int pending_ = 0;                                 // workers still running this batch
  bool stop_ = false;
  std::vector<std::thread> workers_;  // one per partition in [1, P)
};

}  // namespace flashsim

#endif  // FLASHSIM_SRC_SIM_PARTITION_H_
